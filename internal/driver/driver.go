package driver

import (
	"fmt"
	"slices"

	"uvmsim/internal/evict"
	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/pma"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/trace"
	"uvmsim/internal/tree"
	"uvmsim/internal/xfer"
)

// Replayer is the GPU-side replay command interface.
type Replayer interface {
	Replay()
}

// FaultInjector is the driver-visible surface of the fault-injection
// layer (internal/inject). DMA failures and fault-buffer perturbations
// are injected below the driver via xfer.Link and faultbuf.Buffer hooks;
// this interface covers the perturbations the driver applies itself.
type FaultInjector interface {
	// EvictStall returns extra simulated latency injected into one
	// eviction (lock contention, RM call stalls); zero means none.
	EvictStall() sim.Duration
}

// Driver is the simulated UVM kernel module. It is driven entirely by
// fault interrupts (OnFault) and schedules its pipeline as a chain of
// simulation events so that GPU execution, DMA, and driver work interleave
// on the shared clock exactly as they do on real hardware.
type Driver struct {
	eng      *sim.Engine
	cfg      Config
	space    *mem.AddressSpace
	buf      *faultbuf.Buffer
	alloc    *pma.PMA
	link     *xfer.Link
	policy   evict.Policy
	pf       prefetch.Prefetcher
	replayer Replayer

	breakdown stats.Breakdown
	m         metrics
	rec       *trace.Recorder // optional; nil-safe
	inj       FaultInjector   // optional; nil-safe
	tr        *obs.Tracer     // optional span tracing; nil-safe
	life      *obs.Lifecycle  // optional per-fault tracking; nil-safe
	res       Residency       // optional multi-GPU residency map; nil at K=1

	// Batch envelope state for span tracing: one SpanBatch covers first
	// entry fetched to the moment the next fetch (or pass end) begins.
	batchSeq    uint64
	batchStart  sim.Time
	batchFaults int
	batchOpen   bool

	idle bool
	// servicedSinceReplay supports the Once policy: replay fires only
	// when the buffer drains after servicing work.
	servicedSinceReplay int
	// dropsReplayed is the buffer drop count already covered by a replay.
	// Dropped faults leave stalled warps with no buffer entry; when new
	// drops outrun the last replay, endPass must force one or those warps
	// would never re-fault (graceful buffer-full degradation).
	dropsReplayed uint64

	// Batch-scoped scratch arena (DESIGN.md §12). All of it is owned by
	// exactly one in-flight batch at a time: the pipeline is a strictly
	// serial event chain (fetch → preprocess → service… → batchEnd →
	// next fetch), so the arena is reclaimed at the next preprocess,
	// after the previous batch has fully retired. Reuse never crosses a
	// batch boundary mid-flight and never leaks state: every field is
	// reset before use.
	acc      []faultbuf.Entry      // fetch accumulation, cap BatchSize
	bins     []*bin                // current batch's bins, sorted by block
	binIndex map[mem.VABlockID]int // block -> index into bins; cleared per batch
	binFree  []*bin                // recycled bins with retained bitmaps/maps
}

// Deps bundles the driver's collaborators.
type Deps struct {
	Engine   *sim.Engine
	Space    *mem.AddressSpace
	Buffer   *faultbuf.Buffer
	PMA      *pma.PMA
	Link     *xfer.Link
	Evict    evict.Policy
	Prefetch prefetch.Prefetcher
	Replayer Replayer
	Trace    *trace.Recorder // optional
	Inject   FaultInjector   // optional
	Obs      *obs.Tracer     // optional span tracing
	Life     *obs.Lifecycle  // optional fault-lifecycle tracking
	// Residency is the shared multi-GPU residency map; nil for the
	// single-GPU model.
	Residency Residency
}

// New validates and assembles a driver.
func New(cfg Config, d Deps) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.Engine == nil || d.Space == nil || d.Buffer == nil || d.PMA == nil ||
		d.Link == nil || d.Evict == nil || d.Prefetch == nil || d.Replayer == nil {
		return nil, fmt.Errorf("driver: missing dependency in %+v", d)
	}
	drv := &Driver{
		eng:      d.Engine,
		cfg:      cfg,
		space:    d.Space,
		buf:      d.Buffer,
		alloc:    d.PMA,
		link:     d.Link,
		policy:   d.Evict,
		pf:       d.Prefetch,
		replayer: d.Replayer,
		m:        newMetrics(),
		rec:      d.Trace,
		inj:      d.Inject,
		tr:       d.Obs,
		life:     d.Life,
		res:      d.Residency,
		idle:     true,
		acc:      make([]faultbuf.Entry, 0, cfg.BatchSize),
		binIndex: make(map[mem.VABlockID]int),
	}
	if drv.res != nil {
		// Registered lazily so single-GPU metric snapshots are unchanged.
		drv.m.remoteMaps = drv.m.reg.Counter("remote_map_services")
	}
	return drv, nil
}

// Breakdown returns the accumulated per-phase time.
func (d *Driver) Breakdown() *stats.Breakdown { return &d.breakdown }

// Lifecycle returns the fault-lifecycle collector (nil when disabled).
func (d *Driver) Lifecycle() *obs.Lifecycle { return d.life }

// Idle reports whether a fault-handling pass is in flight.
func (d *Driver) Idle() bool { return d.idle }

// OnFault implements gpusim.Handler: the GPU raised an interrupt. A pass
// starts after the interrupt latency unless one is already running.
func (d *Driver) OnFault() {
	if !d.idle {
		return
	}
	d.idle = false
	d.m.passes.Inc(1)
	d.eng.After(d.cfg.InterruptLatency, d.fetchBatch)
}

// chargeSpan books simulated time into the span kind's breakdown phase
// and emits exactly one span covering the charged interval [now, now+dur].
// Being the single booking point is what makes span totals grouped by
// obs.PhaseOf reconcile exactly with the Breakdown: they are two views of
// the same charge.
func (d *Driver) chargeSpan(k obs.Kind, dur sim.Duration, arg int64) {
	if p, ok := obs.PhaseOf(k); ok {
		d.breakdown.Add(p, dur)
	}
	if d.tr.Enabled() {
		now := d.eng.Now()
		d.tr.Emit(k, now, now.Add(dur), d.batchSeq, arg)
	}
}

// beginBatch opens the batch envelope when a batch commits.
func (d *Driver) beginBatch(faults int) {
	d.batchSeq++
	d.batchStart = d.eng.Now()
	d.batchFaults = faults
	d.batchOpen = true
	d.m.batchFaults.Observe(sim.Duration(faults))
}

// closeBatch closes the envelope for the batch whose pipeline just
// finished (called as the next fetch begins, or at pass end): it feeds
// the per-batch latency histogram and emits the SpanBatch envelope.
func (d *Driver) closeBatch() {
	if !d.batchOpen {
		return
	}
	d.batchOpen = false
	now := d.eng.Now()
	d.m.batchNs.Observe(now.Sub(d.batchStart))
	d.tr.Emit(obs.SpanBatch, d.batchStart, now, d.batchSeq, int64(d.batchFaults))
}

// dma schedules a transfer, retrying transient failures with bounded
// exponential backoff on the simulated clock. After DMAMaxRetries failed
// attempts the transfer is forced through the non-abortable path (a
// synchronous copy that cannot be declined), so the pipeline always
// makes progress. It returns the completion time; backoff waits are part
// of it and therefore charged to whichever phase waits on the transfer.
func (d *Driver) dma(dir xfer.Direction, bytes int64) sim.Time {
	notBefore := d.eng.Now()
	backoff := d.cfg.DMABackoffBase
	for attempt := 0; ; attempt++ {
		end, ok := d.link.Attempt(dir, bytes, attempt, notBefore)
		if ok {
			return end
		}
		d.m.dmaFailures.Inc(1)
		if attempt >= d.cfg.DMAMaxRetries {
			d.m.dmaGiveups.Inc(1)
			return d.link.Enqueue(dir, bytes, nil)
		}
		d.m.dmaRetries.Inc(1)
		d.m.dmaBackoffNs.Inc(uint64(backoff))
		notBefore = end.Add(backoff)
		backoff *= 2
		if backoff > d.cfg.DMABackoffMax {
			backoff = d.cfg.DMABackoffMax
		}
	}
}

// fetchBatch reads the next batch of ready fault entries, or ends the
// pass when the buffer has drained. The previous batch's envelope closes
// here: its pipeline has fully retired once the next fetch begins, which
// is also what makes the accumulation scratch safe to reclaim.
func (d *Driver) fetchBatch() {
	d.closeBatch()
	d.fetchMore(d.acc[:0])
}

// fetchMore accumulates ready entries into the current batch, applying
// the configured fetch mode when a not-ready entry blocks the head. acc
// is the driver's batch-scoped scratch slice (or a poll continuation of
// it); entries are appended in place, so a steady-state fetch performs
// no allocations.
func (d *Driver) fetchMore(acc []faultbuf.Entry) {
	now := d.eng.Now()
	prev := len(acc)
	acc = d.buf.AppendReady(acc, d.cfg.BatchSize-len(acc), now)
	d.acc = acc // retain any capacity growth for the next batch
	if d.life.Enabled() {
		for _, e := range acc[prev:] {
			d.life.Fetched(e.Seq, now)
		}
	}
	headBlocked := d.buf.Len() > 0 && len(acc) < d.cfg.BatchSize
	if headBlocked && (len(acc) == 0 || d.cfg.Fetch == FetchFillBatch) {
		// Nothing usable yet, or fill-batch mode wants a full batch:
		// poll the not-ready head.
		d.m.polls.Inc(1)
		d.chargeSpan(obs.SpanPoll, d.cfg.PollInterval, 0)
		acc := acc
		d.eng.After(d.cfg.PollInterval, func() { d.fetchMore(acc) })
		return
	}
	if len(acc) == 0 {
		d.endPass()
		return
	}
	d.m.batches.Inc(1)
	d.m.faultsFetched.Inc(uint64(len(acc)))
	d.beginBatch(len(acc))
	cost := d.cfg.FetchFixed +
		sim.Duration(len(acc))*(d.cfg.FetchPerFault+d.cfg.BookkeepPerFault)
	d.chargeSpan(obs.SpanFetch, cost, int64(len(acc)))
	d.eng.After(cost, func() { d.preprocess(acc) })
}

// bin is the per-VABlock grouping of one batch's faults. Bins live in
// the driver's batch-scoped pool: their bitmaps (and origin map, when
// enabled) are allocated once and reset on reuse.
type bin struct {
	block    mem.VABlockID
	demanded *mem.Bitmap // in-block page indexes demanded in this batch
	writes   *mem.Bitmap // demanded pages with write access
	sms      map[int]int // page index -> originating SM (origin-info extension)
	seqs     []uint64    // member fault sequence numbers (lifecycle tracking only)
}

// getBin returns a reset bin for block id, reusing a pooled one when
// available.
func (d *Driver) getBin(id mem.VABlockID, geom mem.Geometry) *bin {
	if n := len(d.binFree); n > 0 {
		b := d.binFree[n-1]
		d.binFree = d.binFree[:n-1]
		b.block = id
		b.demanded.Reset()
		b.writes.Reset()
		if b.sms != nil {
			clear(b.sms)
		}
		b.seqs = b.seqs[:0]
		return b
	}
	b := &bin{
		block:    id,
		demanded: mem.NewBitmap(geom.PagesPerVABlock),
		writes:   mem.NewBitmap(geom.PagesPerVABlock),
	}
	if d.cfg.FaultOriginInfo {
		b.sms = make(map[int]int)
	}
	return b
}

// binBatch groups the batch's entries into per-VABlock bins, sorted by
// ascending block ID and rotated across batches. It reclaims the
// previous batch's bins first — safe because the pipeline is strictly
// serial, so by the time the next batch reaches preprocess the previous
// one has fully retired (batchEnd ran before this fetch). Steady state
// allocates nothing (pinned by TestPreprocessSteadyStateAllocFree).
func (d *Driver) binBatch(entries []faultbuf.Entry) []*bin {
	geom := d.space.Geometry()
	d.binFree = append(d.binFree, d.bins...)
	d.bins = d.bins[:0]
	clear(d.binIndex)
	var dups uint64
	for _, e := range entries {
		id := geom.BlockOf(e.Page)
		i, ok := d.binIndex[id]
		if !ok {
			i = len(d.bins)
			d.bins = append(d.bins, d.getBin(id, geom))
			d.binIndex[id] = i
		}
		b := d.bins[i]
		idx := geom.PageIndex(e.Page)
		if !b.demanded.Set(idx) {
			dups++
		}
		if e.Write {
			b.writes.Set(idx)
		}
		if b.sms != nil {
			b.sms[idx] = e.SM
		}
		if d.life.Enabled() {
			// Deduplicated entries stay bin members: their lifecycle ends
			// with the bin's service and replay like any other.
			b.seqs = append(b.seqs, e.Seq)
		}
	}
	d.m.faultsDeduped.Inc(dups)
	ordered := d.bins
	slices.SortFunc(ordered, func(a, b *bin) int {
		switch {
		case a.block < b.block:
			return -1
		case a.block > b.block:
			return 1
		default:
			return 0
		}
	})
	// The service order must be fully determined by the batch contents:
	// block IDs are unique within a batch (the index map guarantees it),
	// so the sort has no ties and no order instability to hide behind.
	// assertUniqueBlocks keeps that invariant explicit.
	assertUniqueBlocks(ordered)
	// Rotate the service order across batches. When a batch spans more
	// VABlocks than the framebuffer holds, a fixed order would make the
	// allocation of the batch's tail bins always evict the same
	// head bins (LRU cascade), permanently starving the warps behind
	// them; rotation guarantees every block periodically survives a
	// batch. At real scale (capacity >> bins per batch) this changes
	// nothing.
	if n := len(ordered); n > 1 {
		rotateLeft(ordered, int(d.m.batches.Get())%n)
	}
	return ordered
}

// assertUniqueBlocks panics when two bins share a block ID. Duplicate
// bins would make the service order depend on sort-internal tie
// handling and double-service a block's faults; the binning index makes
// them impossible, and this assertion keeps it that way.
func assertUniqueBlocks(ordered []*bin) {
	for i := 1; i < len(ordered); i++ {
		if ordered[i].block <= ordered[i-1].block {
			panic(fmt.Sprintf("driver: duplicate bin for block %d in one batch", ordered[i].block))
		}
	}
}

// rotateLeft rotates s in place so s[rot] becomes the first element
// (three-reversal rotation, no scratch slice).
func rotateLeft[T any](s []T, rot int) {
	slices.Reverse(s[:rot])
	slices.Reverse(s[rot:])
	slices.Reverse(s)
}

// preprocess sorts and bins the batch by VABlock, deduplicating repeated
// pages (the "basic bookkeeping and logical checks").
func (d *Driver) preprocess(entries []faultbuf.Entry) {
	ordered := d.binBatch(entries)
	cost := sim.Duration(len(entries)) * d.cfg.SortPerFault
	d.chargeSpan(obs.SpanSort, cost, int64(len(entries)))
	d.eng.After(cost, func() { d.serviceBlock(ordered, 0) })
}

// serviceBlock services the i-th bin, then continues with the rest of the
// batch.
func (d *Driver) serviceBlock(bins []*bin, i int) {
	if i >= len(bins) {
		d.batchEnd()
		return
	}
	b := bins[i]
	block := d.space.Block(b.block)
	if d.res != nil && !block.Allocated {
		// Multi-GPU: a block a peer owns (or that this device already
		// remote-mapped) services as a remote mapping, not a migration.
		if block.Remote || d.res.Classify(b.block) == OwnPeer {
			d.serviceRemote(bins, i)
			return
		}
	}
	if !block.Allocated {
		d.ensureAlloc(bins, i)
		return
	}
	d.policy.Touch(block)
	block.Touches++
	d.migrate(bins, i)
}

// ensureAlloc reserves physical backing for the bin's block, evicting
// under memory pressure and restarting (the paper's lock-drop restart).
func (d *Driver) ensureAlloc(bins []*bin, i int) {
	block := d.space.Block(bins[i].block)
	if d.res != nil && (block.Remote || d.res.Classify(bins[i].block) == OwnPeer) {
		// A peer claimed the block while this device waited out an
		// eviction retry; service it as a remote mapping instead.
		d.serviceRemote(bins, i)
		return
	}
	cost, err := d.alloc.Alloc()
	if err == nil {
		block.Allocated = true
		d.policy.Insert(block)
		block.Touches++
		if d.res != nil {
			d.res.Claimed(block)
		}
		d.chargeSpan(obs.SpanPMAAlloc, cost, 1)
		d.eng.After(cost, func() { d.migrate(bins, i) })
		return
	}
	// Out of memory: evict the policy's victim and restart this block's
	// faulting path.
	victim := d.policy.Victim()
	if victim == nil {
		panic("driver: allocation failed with no eviction candidates")
	}
	evictCost, evictedPages := d.evictBlock(victim)
	d.chargeSpan(obs.SpanEvict, cost+evictCost, int64(evictedPages))
	d.eng.After(cost+evictCost, func() { d.ensureAlloc(bins, i) })
}

// evictBlock writes back the victim's dirty pages, unmaps it, and
// releases its physical backing. It returns the simulated cost (CPU work
// plus waiting for the write-back DMA) and the resident pages released.
func (d *Driver) evictBlock(victim *mem.VABlock) (sim.Duration, int) {
	now := d.eng.Now()
	resident := victim.Resident.Count()
	var dirtyPages int
	var dmaEnd sim.Time = now
	victim.Dirty.Runs(func(lo, hi int) {
		n := hi - lo
		dirtyPages += n
		end := d.dma(xfer.DeviceToHost, mem.Bytes(n))
		if end > dmaEnd {
			dmaEnd = end
		}
	})
	cpu := d.cfg.EvictFixed + sim.Duration(resident)*d.cfg.EvictPerPage + d.alloc.Free()
	if d.inj != nil {
		if stall := d.inj.EvictStall(); stall > 0 {
			d.m.evictStalls.Inc(1)
			cpu += stall
		}
	}
	d.m.evictions.Inc(1)
	d.m.evictedPages.Inc(uint64(resident))
	d.m.evictedDirtyPages.Inc(uint64(dirtyPages))
	d.policy.Remove(victim)
	victim.Resident.Reset()
	victim.Dirty.Reset()
	victim.Allocated = false
	victim.Evictions++
	if d.res != nil {
		d.res.Released(victim)
	}
	d.rec.Record(now, trace.KindEvict, d.space.Geometry().FirstPage(victim.ID), victim.ID, victim.Range)

	total := cpu
	if wait := dmaEnd.Sub(now); wait > total {
		total = wait
	}
	return total, resident
}

// migrate plans the fetch set (demand + prefetch), zeroes and stages
// pages, and issues the DMA; mapping follows when both the CPU work and
// the transfers complete.
func (d *Driver) migrate(bins []*bin, i int) {
	b := bins[i]
	block := d.space.Block(b.block)
	geom := d.space.Geometry()
	ctx := &prefetch.Context{
		Geom:           geom,
		Block:          block,
		Valid:          d.space.ValidPagesIn(b.block),
		Faulted:        b.demanded,
		FaultSMs:       b.sms,
		Oversubscribed: d.alloc.Exhausted(),
	}
	res := d.pf.Plan(ctx)
	if res.Fetch.Count() == 0 {
		// Every demanded page is already resident (serviced by an earlier
		// batch); only fixed bookkeeping remains.
		d.m.staleBins.Inc(1)
		cost := d.cfg.ServiceFixedPerBlock
		d.chargeSpan(obs.SpanMigrate, cost, 0)
		d.eng.After(cost, func() { d.afterMap(bins, i, res) })
		return
	}

	now := d.eng.Now()
	runs := 0
	var dmaEnd sim.Time = now
	res.Fetch.Runs(func(lo, hi int) {
		runs++
		end := d.dma(xfer.HostToDevice, mem.Bytes(hi-lo))
		if end > dmaEnd {
			dmaEnd = end
		}
	})
	cpu := d.cfg.ServiceFixedPerBlock + d.cfg.PrefetchPlanPerBlock +
		sim.Duration(runs)*d.cfg.StagePerRun +
		sim.Duration(res.Fetch.Count())*d.cfg.ZeroPerPage
	mapStart := now.Add(cpu)
	if dmaEnd > mapStart {
		mapStart = dmaEnd
	}
	d.chargeSpan(obs.SpanMigrate, mapStart.Sub(now), int64(res.Fetch.Count()))
	d.m.migratedPages.Inc(uint64(res.Fetch.Count()))
	d.m.demandPages.Inc(uint64(res.Faulted))
	d.m.prefetchedPages.Inc(uint64(res.Prefetched))
	d.eng.At(mapStart, func() { d.mapBlock(bins, i, res) })
}

// mapOps counts PTE writes for a fetch set. A 64 KB-aligned chunk fully
// present in the fetch set maps with a single big-page PTE only when the
// prefetcher populated it (the big-page upgrade is what enables 64 KB
// PTEs); purely demanded pages map as individual 4 KB PTEs, which is why
// prefetching reduces mapping cost beyond just eliminating faults.
func mapOps(fetch, demanded *mem.Bitmap) int {
	ops := 0
	fetch.Runs(func(lo, hi int) {
		// Walk the run one 64 KB chunk at a time instead of page by page:
		// a chunk is either fully inside the run (one popcount decides big
		// vs. small PTEs) or partial (always small PTEs, counted
		// arithmetically).
		for p := lo; p < hi; {
			next := mem.BigPageBase(p) + mem.PagesPerBigPage
			switch {
			case p != mem.BigPageBase(p) || next > hi:
				// Partial chunk: individual 4 KB PTEs.
				if next > hi {
					next = hi
				}
				ops += next - p
			case demanded.CountRange(p, next) < mem.PagesPerBigPage:
				// Full chunk with at least one prefetched page: the
				// big-page upgrade enables a single 64 KB PTE.
				ops++
			default:
				// Full chunk, purely demanded: 16 individual PTEs.
				ops += mem.PagesPerBigPage
			}
			p = next
		}
	})
	return ops
}

// mapBlock updates page tables and residency, records trace events, and
// hands control back to the batch loop (replaying first under the Block
// policy).
func (d *Driver) mapBlock(bins []*bin, i int, res tree.Result) {
	b := bins[i]
	block := d.space.Block(b.block)
	geom := d.space.Geometry()
	now := d.eng.Now()
	first := geom.FirstPage(b.block)

	cost := sim.Duration(mapOps(res.Fetch, b.demanded))*d.cfg.MapPerOp + d.cfg.MembarPerBlock
	d.chargeSpan(obs.SpanMap, cost, int64(res.Fetch.Count()))

	if d.res == nil || block.Allocated {
		// Multi-GPU: an access-counter migration can strip this block's
		// backing between migrate and mapBlock; installing residency bits
		// on the unbacked view would corrupt the residency map, so the
		// update is skipped and the replayed warps re-fault remotely.
		res.Fetch.ForEachSet(func(idx int) {
			block.Resident.Set(idx)
			kind := trace.KindPrefetch
			if b.demanded.Get(idx) {
				kind = trace.KindFault
			}
			d.rec.Record(now, kind, first+mem.PageID(idx), b.block, block.Range)
		})
		if block.ReadDup {
			// Read-duplication keeps the host copy valid: the migrated pages
			// are clean duplicates (eviction will release them without
			// write-back as long as the GPU does not mutate them).
			d.m.readdupPages.Inc(uint64(res.Fetch.Count()))
		}
	}
	d.servicedSinceReplay++
	d.eng.After(cost, func() { d.afterMap(bins, i, res) })
}

// afterMap applies the per-block replay policy and advances to the next
// bin.
func (d *Driver) afterMap(bins []*bin, i int, res tree.Result) {
	if d.life.Enabled() {
		// A stale bin's faults are duplicates: their warps were woken by
		// an earlier replay and found the pages resident, so service
		// completion is their terminal state. Live bins' faults wait for
		// the replay that wakes their still-stalled warps.
		now := d.eng.Now()
		stale := res.Fetch.Count() == 0
		for _, seq := range bins[i].seqs {
			if stale {
				d.life.ServicedStale(seq, now)
			} else {
				d.life.Serviced(seq, now)
			}
		}
	}
	if d.cfg.Policy == ReplayBlock {
		d.issueReplay(func() { d.serviceBlock(bins, i+1) })
		return
	}
	d.serviceBlock(bins, i+1)
}

// batchEnd applies the per-batch replay policy, then fetches the next
// batch.
func (d *Driver) batchEnd() {
	switch d.cfg.Policy {
	case ReplayBatchFlush:
		n := d.buf.Len()
		flushCost := d.cfg.FlushFixed + sim.Duration(n)*d.cfg.FlushPerEntry
		discarded := d.buf.Flush()
		d.m.flushes.Inc(1)
		d.m.flushDiscarded.Inc(uint64(discarded))
		d.chargeSpan(obs.SpanFlush, flushCost, int64(discarded))
		d.eng.After(flushCost, func() {
			d.issueReplay(d.fetchBatch)
		})
	case ReplayBatch:
		d.issueReplay(d.fetchBatch)
	default: // ReplayBlock already replayed per block; ReplayOnce waits.
		d.eng.After(0, d.fetchBatch)
	}
}

// issueReplay charges the replay cost, commands the GPU, and continues
// with next.
func (d *Driver) issueReplay(next func()) {
	d.m.replays.Inc(1)
	d.servicedSinceReplay = 0
	// Every replay wakes all stalled warps, so faults dropped before this
	// point will be re-raised by their warps; no forced replay is owed
	// for them.
	d.dropsReplayed = d.buf.Drops()
	d.chargeSpan(obs.SpanReplay, d.cfg.ReplayIssue, 0)
	d.life.Replayed(d.eng.Now())
	d.replayer.Replay()
	d.eng.After(d.cfg.ReplayIssue, next)
}

// endPass finishes the pass; under the Once policy this is where the
// single replay fires. Before going idle the driver settles its debt to
// dropped faults: a fault rejected by a full (or perturbed) buffer has
// no entry anywhere, so only a replay makes its stalled warp re-raise
// it — real hardware's buffer-full degradation. Going idle with unpaid
// drops would deadlock the warp.
func (d *Driver) endPass() {
	d.closeBatch()
	d.syncBufCounters()
	if d.cfg.Policy == ReplayOnce && d.servicedSinceReplay > 0 {
		d.issueReplay(func() {
			d.idle = true
			d.rearmIfWork()
		})
		return
	}
	if d.buf.Drops() > d.dropsReplayed {
		d.m.forcedReplays.Inc(1)
		d.issueReplay(func() {
			d.idle = true
			d.rearmIfWork()
		})
		return
	}
	d.idle = true
	d.rearmIfWork()
}

// syncBufCounters mirrors the fault buffer's cumulative accounting into
// the driver counter set so overflow is visible in every report instead
// of silently absorbed.
func (d *Driver) syncBufCounters() {
	d.m.reg.Gauge("faultbuf_drops").Set(d.buf.Drops())
	d.m.reg.Gauge("faultbuf_flushed").Set(d.buf.Flushed())
	// The injection mirrors register lazily so they appear in reports
	// only when injection actually fired, as before the registry.
	if inj := d.buf.InjectedDrops(); inj > 0 {
		d.m.reg.Gauge("faultbuf_injected_drops").Set(inj)
	}
	if dups := d.buf.InjectedDups(); dups > 0 {
		d.m.reg.Gauge("faultbuf_injected_dups").Set(dups)
	}
}

// rearmIfWork restarts a pass when entries arrived while the pass was
// shutting down (they would otherwise wait for the next interrupt, but
// the interrupt already fired and was absorbed by the running pass).
// Unpaid drops re-arm too: the new pass's endPass issues the forced
// replay that recovers their stalled warps.
func (d *Driver) rearmIfWork() {
	if d.buf.Len() > 0 || d.buf.Drops() > d.dropsReplayed {
		d.OnFault()
	}
}
