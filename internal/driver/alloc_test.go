package driver

import (
	"testing"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
)

// batchEntries builds a batch touching several VABlocks with interleaved,
// duplicated pages — the shape preprocess sees under parallel fault
// arrival.
func batchEntries(geom mem.Geometry, blocks, perBlock int) []faultbuf.Entry {
	entries := make([]faultbuf.Entry, 0, blocks*perBlock)
	seq := uint64(0)
	for p := 0; p < perBlock; p++ {
		for b := blocks - 1; b >= 0; b-- {
			seq++
			entries = append(entries, faultbuf.Entry{
				Seq:   seq,
				Page:  mem.PageID(b*geom.PagesPerVABlock + p*3%geom.PagesPerVABlock),
				Write: p%2 == 0,
				SM:    b % 4,
			})
		}
	}
	return entries
}

// TestPreprocessSteadyStateAllocFree pins the batch-scoped scratch arena
// (DESIGN.md §12): once the bin pool is warm, grouping and ordering a
// batch allocates nothing.
func TestPreprocessSteadyStateAllocFree(t *testing.T) {
	h := newHarness(t, 64<<20, 16<<20)
	entries := batchEntries(h.space.Geometry(), 6, 40)
	h.drv.binBatch(entries) // warm the bin pool and index
	if n := testing.AllocsPerRun(100, func() {
		h.drv.binBatch(entries)
	}); n != 0 {
		t.Errorf("binBatch allocates %v times per batch in steady state, want 0", n)
	}
}

// TestFetchSteadyStateAllocFree pins the fetch accumulation scratch: a
// warm driver pulls a full batch out of the ring buffer without
// allocating.
func TestFetchSteadyStateAllocFree(t *testing.T) {
	h := newHarness(t, 64<<20, 16<<20)
	d := h.drv
	d.acc = d.acc[:0]
	d.acc = append(d.acc, faultbuf.Entry{Seq: 1})[:0] // warm capacity retention path
	fill := func() {
		for i := 0; i < d.cfg.BatchSize; i++ {
			if _, ok := h.buf.Put(mem.PageID(i), false, 0, 0, 0); !ok {
				t.Fatal("fault buffer full while filling")
			}
		}
	}
	fill()
	d.acc = h.buf.AppendReady(d.acc[:0], d.cfg.BatchSize, 0)
	if n := testing.AllocsPerRun(20, func() {
		fill()
		d.acc = h.buf.AppendReady(d.acc[:0], d.cfg.BatchSize, 0)
	}); n != 0 {
		t.Errorf("batch fetch allocates %v times per batch in steady state, want 0", n)
	}
}

// TestBinBatchOrderedUniqueBlocks is the ordering regression test: the
// bins come out strictly ascending by block ID (modulo the batch
// rotation, zero here) with every block exactly once, and the demanded
// sets contain exactly the batch's pages.
func TestBinBatchOrderedUniqueBlocks(t *testing.T) {
	h := newHarness(t, 64<<20, 16<<20)
	geom := h.space.Geometry()
	entries := batchEntries(geom, 6, 40)
	for range 3 { // repeat to cover pooled-bin reuse
		ordered := h.drv.binBatch(entries)
		if len(ordered) != 6 {
			t.Fatalf("got %d bins, want 6", len(ordered))
		}
		want := make(map[mem.VABlockID]map[int]bool)
		for _, e := range entries {
			id := geom.BlockOf(e.Page)
			if want[id] == nil {
				want[id] = make(map[int]bool)
			}
			want[id][geom.PageIndex(e.Page)] = true
		}
		for i, b := range ordered {
			if i > 0 && b.block <= ordered[i-1].block {
				t.Fatalf("bins not strictly ascending: block %d at %d after %d",
					b.block, i, ordered[i-1].block)
			}
			if b.demanded.Count() != len(want[b.block]) {
				t.Errorf("block %d: demanded %d pages, want %d",
					b.block, b.demanded.Count(), len(want[b.block]))
			}
			b.demanded.ForEachSet(func(idx int) {
				if !want[b.block][idx] {
					t.Errorf("block %d: stale demanded page %d (pool reuse leak)", b.block, idx)
				}
			})
		}
	}
}

func TestAssertUniqueBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate block IDs did not panic")
		}
	}()
	assertUniqueBlocks([]*bin{{block: 3}, {block: 3}})
}

func TestRotateLeft(t *testing.T) {
	for _, tc := range []struct {
		in   []int
		rot  int
		want []int
	}{
		{[]int{1, 2, 3, 4, 5}, 2, []int{3, 4, 5, 1, 2}},
		{[]int{1, 2, 3}, 0, []int{1, 2, 3}},
		{[]int{1, 2}, 1, []int{2, 1}},
	} {
		got := append([]int(nil), tc.in...)
		rotateLeft(got, tc.rot)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("rotateLeft(%v, %d) = %v, want %v", tc.in, tc.rot, got, tc.want)
				break
			}
		}
	}
}
