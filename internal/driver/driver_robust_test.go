package driver

import (
	"testing"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

func TestRetryBackoffValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(c *Config) {}, false},
		{"negative retries", func(c *Config) { c.DMAMaxRetries = -1 }, true},
		{"zero retries ignores backoff", func(c *Config) {
			c.DMAMaxRetries = 0
			c.DMABackoffBase = 0
			c.DMABackoffMax = 0
		}, false},
		{"zero backoff base", func(c *Config) {
			c.DMAMaxRetries = 3
			c.DMABackoffBase = 0
		}, true},
		{"negative backoff base", func(c *Config) {
			c.DMAMaxRetries = 3
			c.DMABackoffBase = -sim.Microsecond
		}, true},
		{"max below base", func(c *Config) {
			c.DMAMaxRetries = 3
			c.DMABackoffBase = 4 * sim.Microsecond
			c.DMABackoffMax = 2 * sim.Microsecond
		}, true},
		{"max equals base ok", func(c *Config) {
			c.DMAMaxRetries = 3
			c.DMABackoffBase = 4 * sim.Microsecond
			c.DMABackoffMax = 4 * sim.Microsecond
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestDMARetryWithBackoff(t *testing.T) {
	// The first two attempts of every transfer fail; the third succeeds.
	h := newHarness(t, 64<<20, 8<<20)
	h.link.SetFaultHook(func(_ xfer.Direction, _ int64, attempt int) bool {
		return attempt < 2
	})
	h.fault(5, false)
	end := h.eng.Run()
	if !h.space.IsResident(5) {
		t.Fatal("page not serviced through DMA retries")
	}
	c := h.drv.Counters()
	if c.Get("dma_failures") != 2 || c.Get("dma_retries") != 2 {
		t.Errorf("failures/retries = %d/%d, want 2/2",
			c.Get("dma_failures"), c.Get("dma_retries"))
	}
	if c.Get("dma_giveups") != 0 {
		t.Errorf("dma_giveups = %d, want 0", c.Get("dma_giveups"))
	}
	if got := c.Get("dma_backoff_ns"); got == 0 {
		t.Error("no backoff time accounted")
	}
	if h.link.Failures(xfer.HostToDevice) != 2 {
		t.Errorf("link failures = %d, want 2", h.link.Failures(xfer.HostToDevice))
	}

	// The same fault with a healthy link must finish strictly earlier:
	// retries cost real simulated time (aborted descriptors + backoff).
	clean := newHarness(t, 64<<20, 8<<20)
	clean.fault(5, false)
	cleanEnd := clean.eng.Run()
	if end <= cleanEnd {
		t.Errorf("retried run ended at %v, healthy run at %v; retries should cost time", end, cleanEnd)
	}
}

func TestDMABackoffIsExponentialAndCapped(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	base, max := h.drv.cfg.DMABackoffBase, h.drv.cfg.DMABackoffMax
	fails := 4
	h.link.SetFaultHook(func(_ xfer.Direction, _ int64, attempt int) bool {
		return attempt < fails
	})
	h.fault(5, false)
	h.eng.Run()
	// base + 2base + 4base + 8base, each term clamped at max.
	var want sim.Duration
	b := base
	for i := 0; i < fails; i++ {
		want += b
		b *= 2
		if b > max {
			b = max
		}
	}
	if got := sim.Duration(h.drv.Counters().Get("dma_backoff_ns")); got != want {
		t.Errorf("dma_backoff_ns = %v, want %v", got, want)
	}
}

func TestDMAGiveupForcesTransfer(t *testing.T) {
	// A link that never passes an Attempt: after DMAMaxRetries the driver
	// must force the transfer through the non-abortable path rather than
	// spin forever.
	h := newHarness(t, 64<<20, 8<<20)
	h.link.SetFaultHook(func(xfer.Direction, int64, int) bool { return true })
	h.fault(5, false)
	h.eng.Run()
	if !h.space.IsResident(5) {
		t.Fatal("page not serviced after DMA give-up")
	}
	c := h.drv.Counters()
	if c.Get("dma_giveups") == 0 {
		t.Error("no give-up recorded for a permanently failing link")
	}
	wantFailures := uint64(h.drv.cfg.DMAMaxRetries + 1)
	if c.Get("dma_failures") != wantFailures {
		t.Errorf("dma_failures = %d, want %d (MaxRetries+1)", c.Get("dma_failures"), wantFailures)
	}
	if !h.drv.Idle() {
		t.Error("driver stuck after give-up")
	}
}

// dropFirst is a test perturber that rejects the first n puts, emulating
// injected fault loss with an otherwise empty buffer.
type dropFirst struct{ left int }

func (p *dropFirst) PerturbPut(mem.PageID, bool) faultbuf.PutAction {
	if p.left > 0 {
		p.left--
		return faultbuf.PutAction{Drop: true}
	}
	return faultbuf.PutAction{}
}

func TestDroppedFaultForcesReplay(t *testing.T) {
	// A fault dropped with nothing else in flight leaves a stalled warp
	// and an empty buffer: without the forced-replay path the driver's
	// pass would fetch nothing and go idle, deadlocking the warp.
	h := newHarness(t, 64<<20, 8<<20)
	h.buf.SetPerturber(&dropFirst{left: 1})
	h.gpu.onReplay = func() {
		// The stalled warp re-faults on the replay wave.
		if !h.space.IsResident(600) {
			now := h.eng.Now()
			h.buf.Put(600, false, 0, now, now)
			h.drv.OnFault()
		}
	}
	now := h.eng.Now()
	if _, ok := h.buf.Put(600, false, 0, now, now); ok {
		t.Fatal("precondition: put should have been dropped")
	}
	h.drv.OnFault() // the GPU raises the interrupt even for a dropped fault
	h.eng.Run()
	if !h.space.IsResident(600) {
		t.Fatal("dropped fault never recovered")
	}
	c := h.drv.Counters()
	if c.Get("forced_replays") != 1 {
		t.Errorf("forced_replays = %d, want 1", c.Get("forced_replays"))
	}
	if c.Get("faultbuf_drops") != 1 {
		t.Errorf("faultbuf_drops = %d, want 1", c.Get("faultbuf_drops"))
	}
	if !h.drv.Idle() {
		t.Error("driver not idle after recovery")
	}
}

func TestBufferCapacityOneAllServiced(t *testing.T) {
	// Adversarial capacity: a one-entry fault buffer drops all but one
	// fault of every wave. Replays must grind through the overflow — every
	// page eventually serviced, one (or fewer) per wave.
	for _, policy := range []ReplayPolicy{ReplayBatchFlush, ReplayOnce} {
		h := newHarness(t, 64<<20, 8<<20, withBufferCap(1), withPolicy(policy))
		const pages = 10
		refault := func() {
			now := h.eng.Now()
			for p := 0; p < pages; p++ {
				if !h.space.IsResident(mem.PageID(p)) {
					h.buf.Put(mem.PageID(p), false, 0, now, now)
				}
			}
			h.drv.OnFault()
		}
		h.gpu.onReplay = refault
		refault() // initial fault wave: 1 accepted, 9 dropped
		h.eng.Run()
		for p := 0; p < pages; p++ {
			if !h.space.IsResident(mem.PageID(p)) {
				t.Fatalf("policy %v: page %d never serviced through capacity-1 buffer", policy, p)
			}
		}
		c := h.drv.Counters()
		if c.Get("faultbuf_drops") < pages-1 {
			t.Errorf("policy %v: drops = %d, want >= %d", policy, c.Get("faultbuf_drops"), pages-1)
		}
		if h.buf.Len() != 0 {
			t.Errorf("policy %v: %d entries left in buffer", policy, h.buf.Len())
		}
		if !h.drv.Idle() {
			t.Errorf("policy %v: driver stuck busy", policy)
		}
		if err := h.buf.CheckConsistency(); err != nil {
			t.Errorf("policy %v: %v", policy, err)
		}
	}
}

func TestInjectedEvictStallCharged(t *testing.T) {
	// Small GPU memory forces evictions; a stubbed injector adds a fixed
	// stall to each and the counter must record every one.
	h := newHarness(t, 4*(2<<20), 16<<20)
	h.drv.inj = stallInjector{stall: 10 * sim.Microsecond}
	geom := h.space.Geometry()
	for blk := 0; blk < 6; blk++ {
		h.fault(geom.FirstPage(mem.VABlockID(blk)), false)
		h.eng.Run()
	}
	c := h.drv.Counters()
	if c.Get("evictions") == 0 {
		t.Fatal("test did not trigger eviction")
	}
	if c.Get("evict_stalls") != c.Get("evictions") {
		t.Errorf("evict_stalls = %d, want %d (one per eviction)",
			c.Get("evict_stalls"), c.Get("evictions"))
	}
}

type stallInjector struct{ stall sim.Duration }

func (s stallInjector) EvictStall() sim.Duration { return s.stall }
