// Package driver implements the simulated UVM kernel driver: the fault
// handling pipeline the paper instruments (§III). A handling pass fetches
// batches of fault entries from the GPU buffer (pre-processing), bins
// them by VABlock, services each block (physical allocation, prefetch
// planning, page zeroing/staging, DMA migration, page-table mapping),
// evicts VABlocks under memory pressure (§V), and issues fault replays
// according to one of the four replay policies (§III-E). Every operation
// charges simulated time to the same cost categories the paper reports.
package driver

import (
	"fmt"

	"uvmsim/internal/sim"
)

// ReplayPolicy selects when the driver issues fault-replay notifications
// (paper §III-E).
type ReplayPolicy int

// The four policies supported by the NVIDIA driver.
const (
	// ReplayBlock replays after each VABlock within a batch is serviced:
	// earliest resume, most replays.
	ReplayBlock ReplayPolicy = iota
	// ReplayBatch replays after each fault batch is serviced.
	ReplayBatch
	// ReplayBatchFlush is the default: like ReplayBatch but the fault
	// buffer is flushed first so resumed-but-unsatisfied warps do not
	// leave duplicates behind.
	ReplayBatchFlush
	// ReplayOnce replays only when every fault in the buffer has been
	// serviced: simplest design, longest latency.
	ReplayOnce
)

// String names the policy.
func (p ReplayPolicy) String() string {
	switch p {
	case ReplayBlock:
		return "block"
	case ReplayBatch:
		return "batch"
	case ReplayBatchFlush:
		return "batchflush"
	case ReplayOnce:
		return "once"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseReplayPolicy converts a policy name.
func ParseReplayPolicy(s string) (ReplayPolicy, error) {
	switch s {
	case "block":
		return ReplayBlock, nil
	case "batch":
		return ReplayBatch, nil
	case "batchflush", "":
		return ReplayBatchFlush, nil
	case "once":
		return ReplayOnce, nil
	default:
		return 0, fmt.Errorf("driver: unknown replay policy %q", s)
	}
}

// FetchMode selects how the driver reads the fault buffer (§III-C:
// "faults are fetched until the fault pointer queue is empty, the
// current batch of faults is full, or a fault that is not ready is
// encountered, depending on policy").
type FetchMode int

// Fetch modes.
const (
	// FetchStopAtNotReady processes whatever is ready immediately,
	// polling only when nothing is ready at all (the default).
	FetchStopAtNotReady FetchMode = iota
	// FetchFillBatch polls not-ready entries until the batch is full or
	// the buffer drains, preferring full batches over low latency.
	FetchFillBatch
)

// String names the mode.
func (m FetchMode) String() string {
	switch m {
	case FetchStopAtNotReady:
		return "stop-at-not-ready"
	case FetchFillBatch:
		return "fill-batch"
	default:
		return fmt.Sprintf("fetchmode(%d)", int(m))
	}
}

// Config holds the driver's tunables and cost model. Durations are
// simulated-time charges for the corresponding operations; the defaults
// are calibrated so end-to-end behavior matches the magnitudes the paper
// reports (single far-fault 30-45 µs, hundreds of µs base overhead,
// roughly linear growth with page count).
type Config struct {
	// BatchSize is the maximum faults fetched per batch (driver default 256).
	BatchSize int
	// Policy is the replay policy (default ReplayBatchFlush).
	Policy ReplayPolicy
	// Fetch selects the batch fetch mode (default FetchStopAtNotReady).
	Fetch FetchMode

	// InterruptLatency is GPU-interrupt-to-driver-running latency.
	InterruptLatency sim.Duration
	// FetchFixed is the per-batch cost of reading the fault pointer queue.
	FetchFixed sim.Duration
	// FetchPerFault is the per-entry cost of reading fault information.
	FetchPerFault sim.Duration
	// PollInterval is the wait before re-checking a not-ready entry.
	PollInterval sim.Duration
	// BookkeepPerFault is per-fault logical checks and caching.
	BookkeepPerFault sim.Duration
	// SortPerFault is the per-fault cost of VABlock binning/sorting.
	SortPerFault sim.Duration

	// ServiceFixedPerBlock is per-VABlock service overhead (locking, state).
	ServiceFixedPerBlock sim.Duration
	// PrefetchPlanPerBlock is the cost of running the prefetch tree.
	PrefetchPlanPerBlock sim.Duration
	// ZeroPerPage is the cost of zeroing a newly allocated page.
	ZeroPerPage sim.Duration
	// StagePerRun is the CPU cost of staging one contiguous run for DMA.
	StagePerRun sim.Duration
	// MapPerOp is the cost of one page-table write; contiguous 64 KB-aligned
	// regions map with big-page PTEs (one op per 16 pages).
	MapPerOp sim.Duration
	// MembarPerBlock is the GPU membar/TLB-invalidate cost per serviced block.
	MembarPerBlock sim.Duration

	// FlushFixed and FlushPerEntry price a fault-buffer flush.
	FlushFixed    sim.Duration
	FlushPerEntry sim.Duration
	// ReplayIssue is the cost of sending a replay notification.
	ReplayIssue sim.Duration

	// EvictFixed covers victim selection, lock dance, and the faulting
	// path restart the paper calls out (§V-A).
	EvictFixed sim.Duration
	// EvictPerPage is the unmap cost per resident page of the victim.
	EvictPerPage sim.Duration

	// DMAMaxRetries bounds how often a transiently failed DMA transfer is
	// retried before the driver gives up and forces the transfer through
	// synchronously. Zero disables retrying (every failure is forced).
	DMAMaxRetries int
	// DMABackoffBase is the wait before the first DMA retry; subsequent
	// retries double it (bounded exponential backoff on the simulated
	// clock).
	DMABackoffBase sim.Duration
	// DMABackoffMax caps the exponential backoff.
	DMABackoffMax sim.Duration

	// FaultOriginInfo exposes originating-SM identity to the prefetcher
	// (the §VI-B hardware extension). The baseline driver has none.
	FaultOriginInfo bool
}

// DefaultConfig returns the calibrated cost model.
func DefaultConfig() Config {
	return Config{
		BatchSize:            256,
		Policy:               ReplayBatchFlush,
		InterruptLatency:     8 * sim.Microsecond,
		FetchFixed:           1500 * sim.Nanosecond,
		FetchPerFault:        250 * sim.Nanosecond,
		PollInterval:         1 * sim.Microsecond,
		BookkeepPerFault:     450 * sim.Nanosecond,
		SortPerFault:         250 * sim.Nanosecond,
		ServiceFixedPerBlock: 6 * sim.Microsecond,
		PrefetchPlanPerBlock: 1500 * sim.Nanosecond,
		ZeroPerPage:          60 * sim.Nanosecond,
		StagePerRun:          1800 * sim.Nanosecond,
		MapPerOp:             1100 * sim.Nanosecond,
		MembarPerBlock:       2500 * sim.Nanosecond,
		FlushFixed:           2500 * sim.Nanosecond,
		FlushPerEntry:        60 * sim.Nanosecond,
		ReplayIssue:          3500 * sim.Nanosecond,
		EvictFixed:           12 * sim.Microsecond,
		EvictPerPage:         120 * sim.Nanosecond,
		DMAMaxRetries:        8,
		DMABackoffBase:       2 * sim.Microsecond,
		DMABackoffMax:        64 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.BatchSize <= 0 {
		return fmt.Errorf("driver: BatchSize %d must be positive", c.BatchSize)
	}
	if c.Policy < ReplayBlock || c.Policy > ReplayOnce {
		return fmt.Errorf("driver: invalid replay policy %d", int(c.Policy))
	}
	if c.PollInterval <= 0 {
		return fmt.Errorf("driver: PollInterval must be positive")
	}
	if c.Fetch < FetchStopAtNotReady || c.Fetch > FetchFillBatch {
		return fmt.Errorf("driver: invalid fetch mode %d", int(c.Fetch))
	}
	if c.DMAMaxRetries < 0 {
		return fmt.Errorf("driver: DMAMaxRetries %d must be >= 0", c.DMAMaxRetries)
	}
	if c.DMAMaxRetries > 0 {
		if c.DMABackoffBase <= 0 {
			return fmt.Errorf("driver: DMABackoffBase must be positive when retries are enabled, got %v", c.DMABackoffBase)
		}
		if c.DMABackoffMax < c.DMABackoffBase {
			return fmt.Errorf("driver: DMABackoffMax %v below DMABackoffBase %v", c.DMABackoffMax, c.DMABackoffBase)
		}
	}
	return nil
}
