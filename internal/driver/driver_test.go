package driver

import (
	"testing"

	"uvmsim/internal/evict"
	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/pma"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/trace"
	"uvmsim/internal/xfer"
)

// fakeGPU records replay commands. onReplay, when set, emulates stalled
// warps re-raising their faults on the replay wave.
type fakeGPU struct {
	replays  int
	onReplay func()
}

func (f *fakeGPU) Replay() {
	f.replays++
	if f.onReplay != nil {
		f.onReplay()
	}
}

type harness struct {
	eng        *sim.Engine
	space      *mem.AddressSpace
	buf        *faultbuf.Buffer
	pm         *pma.PMA
	link       *xfer.Link
	gpu        *fakeGPU
	drv        *Driver
	rec        *trace.Recorder
	prefetcher prefetch.Prefetcher
}

type harnessOpt func(*Config, *harness)

func withPolicy(p ReplayPolicy) harnessOpt {
	return func(c *Config, _ *harness) { c.Policy = p }
}

func withBufferCap(n int) harnessOpt {
	return func(_ *Config, h *harness) {
		buf, err := faultbuf.New(n)
		if err != nil {
			panic(err)
		}
		h.buf = buf
	}
}

func withPrefetcher(name string) harnessOpt {
	return func(_ *Config, h *harness) {
		pf, err := prefetch.New(name)
		if err != nil {
			panic(err)
		}
		h.prefetcher = pf
	}
}

func newHarness(t testing.TB, gpuMemBytes, allocBytes int64, opts ...harnessOpt) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine(), gpu: &fakeGPU{}, rec: trace.New()}
	h.space = mem.NewAddressSpace(mem.DefaultGeometry())
	if _, err := h.space.Alloc(allocBytes, "data"); err != nil {
		t.Fatal(err)
	}
	var err error
	h.buf, err = faultbuf.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := pma.DefaultConfig(gpuMemBytes)
	pcfg.RMJitterFrac = 0
	h.pm, err = pma.New(pcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.link, err = xfer.NewLink(h.eng, xfer.DefaultPCIe3x16())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	h.prefetcher = &prefetch.None{}
	for _, o := range opts {
		o(&cfg, h)
	}
	h.drv, err = New(cfg, Deps{
		Engine:   h.eng,
		Space:    h.space,
		Buffer:   h.buf,
		PMA:      h.pm,
		Link:     h.link,
		Evict:    evict.NewLRU(),
		Prefetch: h.prefetcher,
		Replayer: h.gpu,
		Trace:    h.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// fault injects a fault entry (ready immediately) and raises the
// interrupt.
func (h *harness) fault(page mem.PageID, write bool) {
	now := h.eng.Now()
	if _, ok := h.buf.Put(page, write, 0, now, now); !ok {
		panic("test fault buffer full")
	}
	h.drv.OnFault()
}

func TestSingleFaultServiced(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	h.fault(5, false)
	end := h.eng.Run()
	if !h.space.IsResident(5) {
		t.Fatal("page not resident after service")
	}
	if !h.drv.Idle() {
		t.Error("driver not idle after pass")
	}
	if h.gpu.replays != 1 {
		t.Errorf("replays = %d, want 1", h.gpu.replays)
	}
	bd := h.drv.Breakdown()
	for _, p := range []stats.Phase{stats.PhasePreprocess, stats.PhasePMAAlloc, stats.PhaseMigrate, stats.PhaseMap, stats.PhaseReplay} {
		if bd.Get(p) == 0 {
			t.Errorf("phase %v not charged", p)
		}
	}
	// Calibration: a single far-fault costs tens of microseconds
	// end-to-end (paper cites 30-45 µs).
	total := end.Sub(0)
	if total < 20*sim.Microsecond || total > 120*sim.Microsecond {
		t.Errorf("single-fault end-to-end = %v, want tens of µs", total)
	}
	if h.rec.CountKind(trace.KindFault) != 1 {
		t.Errorf("trace fault events = %d", h.rec.CountKind(trace.KindFault))
	}
}

func TestBatchDeduplication(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	now := h.eng.Now()
	for i := 0; i < 3; i++ {
		h.buf.Put(7, false, i, now, now) // same page from three SMs
	}
	h.buf.Put(8, false, 0, now, now)
	h.drv.OnFault()
	h.eng.Run()
	c := h.drv.Counters()
	if c.Get("faults_fetched") != 4 {
		t.Errorf("faults_fetched = %d", c.Get("faults_fetched"))
	}
	if c.Get("faults_deduped") != 2 {
		t.Errorf("faults_deduped = %d, want 2", c.Get("faults_deduped"))
	}
	if c.Get("demand_pages") != 2 {
		t.Errorf("demand_pages = %d, want 2", c.Get("demand_pages"))
	}
}

func TestWriteFaultMigratesAndMaps(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	h.fault(3, true)
	h.eng.Run()
	if !h.space.IsResident(3) {
		t.Fatal("write-faulted page not resident")
	}
	if h.link.BytesMoved(xfer.HostToDevice) != mem.PageSize {
		t.Errorf("H2D bytes = %d, want one page", h.link.BytesMoved(xfer.HostToDevice))
	}
}

func TestReplayPolicies(t *testing.T) {
	// Two faults in two different VABlocks, one batch.
	run := func(p ReplayPolicy) (*harness, int) {
		h := newHarness(t, 64<<20, 8<<20, withPolicy(p))
		now := h.eng.Now()
		h.buf.Put(5, false, 0, now, now)
		h.buf.Put(600, false, 0, now, now) // second VABlock
		h.drv.OnFault()
		h.eng.Run()
		return h, h.gpu.replays
	}
	if _, n := run(ReplayBlock); n != 2 {
		t.Errorf("block policy replays = %d, want 2 (one per VABlock)", n)
	}
	if _, n := run(ReplayBatch); n != 1 {
		t.Errorf("batch policy replays = %d, want 1", n)
	}
	h, n := run(ReplayBatchFlush)
	if n != 1 {
		t.Errorf("batchflush policy replays = %d, want 1", n)
	}
	if h.drv.Counters().Get("flushes") != 1 {
		t.Error("batchflush did not flush")
	}
	if _, n = run(ReplayOnce); n != 1 {
		t.Errorf("once policy replays = %d, want 1", n)
	}
}

func TestOncePolicyRepaysOnlyWhenBufferDrains(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20, withPolicy(ReplayOnce))
	cfgBatch := h.drv.cfg.BatchSize
	now := h.eng.Now()
	// More faults than one batch: multiple batches, single replay.
	for i := 0; i < cfgBatch+10; i++ {
		h.buf.Put(mem.PageID(i), false, 0, now, now)
	}
	h.drv.OnFault()
	h.eng.Run()
	if h.gpu.replays != 1 {
		t.Errorf("replays = %d, want 1", h.gpu.replays)
	}
	if h.drv.Counters().Get("batches") < 2 {
		t.Errorf("batches = %d, want >= 2", h.drv.Counters().Get("batches"))
	}
}

func TestBatchFlushDiscardsLateEntries(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20, withPolicy(ReplayBatchFlush))
	now := h.eng.Now()
	h.buf.Put(5, false, 0, now, now)
	h.drv.OnFault()
	// A duplicate arriving mid-service (it will sit in the buffer until
	// the flush discards it).
	h.eng.After(15*sim.Microsecond, func() {
		h.buf.Put(5, false, 1, h.eng.Now(), h.eng.Now())
	})
	h.eng.Run()
	if got := h.drv.Counters().Get("flush_discarded"); got != 1 {
		t.Errorf("flush_discarded = %d, want 1", got)
	}
}

func TestEvictionLRUAndWriteback(t *testing.T) {
	// GPU memory of 4 chunks (over-allocation makes the PMA grab all 4 on
	// the first RM call); 6 blocks of demand -> evictions.
	h := newHarness(t, 4*(2<<20), 16<<20)
	geom := h.space.Geometry()
	for blk := 0; blk < 6; blk++ {
		page := geom.FirstPage(mem.VABlockID(blk))
		now := h.eng.Now()
		h.buf.Put(page, true, 0, now, now) // writes -> dirty pages
		h.drv.OnFault()
		h.eng.Run()
		// Mark serviced pages dirty the way the GPU would on its retried
		// write access.
		b := h.space.Block(mem.VABlockID(blk))
		b.Resident.ForEachSet(func(i int) { b.Dirty.Set(i) })
	}
	c := h.drv.Counters()
	if c.Get("evictions") != 2 {
		t.Fatalf("evictions = %d, want 2", c.Get("evictions"))
	}
	// LRU: blocks 0 and 1 must be the victims.
	if h.space.Block(0).Allocated || h.space.Block(1).Allocated {
		t.Error("LRU victims should be blocks 0 and 1")
	}
	if !h.space.Block(5).Allocated {
		t.Error("most recent block missing")
	}
	if h.link.BytesMoved(xfer.DeviceToHost) != 2*mem.PageSize {
		t.Errorf("writeback bytes = %d, want 2 pages", h.link.BytesMoved(xfer.DeviceToHost))
	}
	if h.drv.Breakdown().Get(stats.PhaseEvict) == 0 {
		t.Error("evict phase not charged")
	}
	if h.rec.CountKind(trace.KindEvict) != 2 {
		t.Errorf("evict trace events = %d", h.rec.CountKind(trace.KindEvict))
	}
}

func TestEvictedBlockCanRefault(t *testing.T) {
	h := newHarness(t, 4*(2<<20), 16<<20)
	geom := h.space.Geometry()
	for blk := 0; blk < 6; blk++ {
		now := h.eng.Now()
		h.buf.Put(geom.FirstPage(mem.VABlockID(blk)), false, 0, now, now)
		h.drv.OnFault()
		h.eng.Run()
	}
	// Block 0 was evicted; fault it again.
	if h.space.IsResident(0) {
		t.Fatal("precondition: page 0 should be evicted")
	}
	h.fault(0, false)
	h.eng.Run()
	if !h.space.IsResident(0) {
		t.Fatal("re-fault after eviction not serviced")
	}
	if h.space.Block(0).Evictions != 1 {
		t.Errorf("block 0 evictions = %d", h.space.Block(0).Evictions)
	}
}

func TestPrefetcherIntegration(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20, withPrefetcher("density"))
	h.fault(5, false)
	h.eng.Run()
	// Density default upgrades to the 64 KB big page.
	resident := h.space.Block(0).Resident.Count()
	if resident != 16 {
		t.Errorf("resident = %d, want 16 (big-page upgrade)", resident)
	}
	if got := h.drv.Counters().Get("prefetched_pages"); got != 15 {
		t.Errorf("prefetched_pages = %d, want 15", got)
	}
	if h.rec.CountKind(trace.KindPrefetch) != 15 {
		t.Errorf("prefetch trace events = %d", h.rec.CountKind(trace.KindPrefetch))
	}
}

func TestStaleBinCostsOnlyFixedWork(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	h.fault(5, false)
	h.eng.Run()
	before := h.drv.Counters().Get("migrated_pages")
	// Same page faults again (e.g. a flushed duplicate): nothing to move.
	h.fault(5, false)
	h.eng.Run()
	c := h.drv.Counters()
	if c.Get("migrated_pages") != before {
		t.Error("stale bin migrated pages")
	}
	if c.Get("stale_bins") != 1 {
		t.Errorf("stale_bins = %d, want 1", c.Get("stale_bins"))
	}
}

func TestPollOnNotReadyEntry(t *testing.T) {
	h := newHarness(t, 64<<20, 8<<20)
	now := h.eng.Now()
	h.buf.Put(5, false, 0, now, now.Add(50*sim.Microsecond)) // ready far in the future
	h.drv.OnFault()
	h.eng.Run()
	if h.drv.Counters().Get("polls") == 0 {
		t.Error("driver never polled a not-ready entry")
	}
	if !h.space.IsResident(5) {
		t.Error("entry eventually serviced")
	}
}

func TestMapOps(t *testing.T) {
	bm := mem.NewBitmap(512)
	noDemand := mem.NewBitmap(512)
	// One full big page populated by prefetch: 1 big-page PTE op.
	for i := 0; i < 16; i++ {
		bm.Set(i)
	}
	if got := mapOps(bm, noDemand); got != 1 {
		t.Errorf("full prefetched big page ops = %d, want 1", got)
	}
	// The same chunk entirely demanded (no prefetcher): 16 4KB PTE ops.
	allDemand := bm.Clone()
	if got := mapOps(bm, allDemand); got != 16 {
		t.Errorf("fully demanded big page ops = %d, want 16", got)
	}
	// A single demanded page inside a prefetched big page still maps as
	// one big-page PTE (the upgrade covers it).
	oneDemand := mem.NewBitmap(512)
	oneDemand.Set(5)
	if got := mapOps(bm, oneDemand); got != 1 {
		t.Errorf("upgraded big page ops = %d, want 1", got)
	}
	// Unaligned 16 pages spanning two big pages: 16 single-page ops.
	bm.Reset()
	for i := 8; i < 24; i++ {
		bm.Set(i)
	}
	if got := mapOps(bm, noDemand); got != 16 {
		t.Errorf("unaligned ops = %d, want 16", got)
	}
	// Full prefetched VABlock: 32 big-page ops.
	bm.Reset()
	for i := 0; i < 512; i++ {
		bm.Set(i)
	}
	if got := mapOps(bm, noDemand); got != 32 {
		t.Errorf("full block ops = %d, want 32", got)
	}
	// Scattered single pages.
	bm.Reset()
	bm.Set(0)
	bm.Set(100)
	bm.Set(511)
	if got := mapOps(bm, noDemand); got != 3 {
		t.Errorf("scattered ops = %d, want 3", got)
	}
}

func TestLateFaultAlwaysServiced(t *testing.T) {
	// A fault landing at any moment relative to an in-flight pass must be
	// serviced eventually — including the shutdown window between the
	// final replay and the driver going idle (the rearm path). The Once
	// policy never flushes, so entries are never legitimately discarded.
	for us := 1; us <= 100; us += 3 {
		at := sim.Duration(us) * sim.Microsecond
		h := newHarness(t, 64<<20, 8<<20, withPolicy(ReplayOnce))
		h.fault(5, false)
		h.eng.After(at, func() {
			now := h.eng.Now()
			h.buf.Put(600, false, 0, now, now)
			h.drv.OnFault()
		})
		h.eng.Run()
		if !h.space.IsResident(600) {
			t.Fatalf("fault injected at t=%v never serviced", at)
		}
		if !h.drv.Idle() {
			t.Fatalf("driver stuck busy for injection at t=%v", at)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero batch size accepted")
	}
	bad = DefaultConfig()
	bad.Policy = ReplayPolicy(9)
	if err := bad.Validate(); err == nil {
		t.Error("bogus policy accepted")
	}
	bad = DefaultConfig()
	bad.PollInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero poll interval accepted")
	}
}

func TestParseReplayPolicy(t *testing.T) {
	for s, want := range map[string]ReplayPolicy{
		"block": ReplayBlock, "batch": ReplayBatch,
		"batchflush": ReplayBatchFlush, "": ReplayBatchFlush, "once": ReplayOnce,
	} {
		got, err := ParseReplayPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseReplayPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseReplayPolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
	if ReplayBatchFlush.String() != "batchflush" || ReplayPolicy(9).String() == "" {
		t.Error("policy String wrong")
	}
}

func TestNewMissingDeps(t *testing.T) {
	if _, err := New(DefaultConfig(), Deps{}); err == nil {
		t.Error("empty deps accepted")
	}
}

func withFetchMode(m FetchMode) harnessOpt {
	return func(c *Config, _ *harness) { c.Fetch = m }
}

func TestFetchModeFillBatchWaitsForFullBatches(t *testing.T) {
	// Sixteen entries whose ready flags land one PollInterval apart: the
	// default mode processes them in several partial batches, while
	// fill-batch mode polls and takes them in one.
	run := func(mode FetchMode) uint64 {
		h := newHarness(t, 64<<20, 8<<20, withFetchMode(mode), withPolicy(ReplayOnce))
		now := h.eng.Now()
		for i := 0; i < 16; i++ {
			h.buf.Put(mem.PageID(i), false, 0, now, now.Add(sim.Duration(i)*2*sim.Microsecond))
		}
		h.drv.OnFault()
		h.eng.Run()
		if got := h.space.ResidentPages(); got != 16 {
			t.Fatalf("mode %v: resident = %d, want 16", mode, got)
		}
		return h.drv.Counters().Get("batches")
	}
	stopBatches := run(FetchStopAtNotReady)
	fillBatches := run(FetchFillBatch)
	if fillBatches != 1 {
		t.Errorf("fill-batch mode used %d batches, want 1", fillBatches)
	}
	if stopBatches <= fillBatches {
		t.Errorf("stop-at-not-ready used %d batches, want more than %d", stopBatches, fillBatches)
	}
}

func TestFetchModeValidationAndNames(t *testing.T) {
	bad := DefaultConfig()
	bad.Fetch = FetchMode(9)
	if err := bad.Validate(); err == nil {
		t.Error("bogus fetch mode accepted")
	}
	if FetchStopAtNotReady.String() != "stop-at-not-ready" || FetchFillBatch.String() != "fill-batch" {
		t.Error("fetch mode names wrong")
	}
	if FetchMode(9).String() == "" {
		t.Error("unknown fetch mode name empty")
	}
}
