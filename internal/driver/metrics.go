package driver

import (
	"uvmsim/internal/obs"
	"uvmsim/internal/stats"
)

// metrics is the driver's typed view of its obs.Registry: every counter
// the pipeline bumps is a pre-registered handle, so the hot path does a
// field increment instead of a map probe, while reports iterate the
// registry's deterministic snapshot. The names are the driver's
// long-standing counter vocabulary; Counters() renders them through the
// legacy stats.CounterSet so existing consumers are unaffected.
type metrics struct {
	reg *obs.Registry

	passes  *obs.Counter
	polls   *obs.Counter
	batches *obs.Counter

	faultsFetched *obs.Counter
	faultsDeduped *obs.Counter
	staleBins     *obs.Counter

	dmaFailures  *obs.Counter
	dmaRetries   *obs.Counter
	dmaGiveups   *obs.Counter
	dmaBackoffNs *obs.Counter

	evictions         *obs.Counter
	evictedPages      *obs.Counter
	evictedDirtyPages *obs.Counter
	evictStalls       *obs.Counter

	migratedPages   *obs.Counter
	demandPages     *obs.Counter
	prefetchedPages *obs.Counter
	readdupPages    *obs.Counter

	flushes        *obs.Counter
	flushDiscarded *obs.Counter
	replays        *obs.Counter
	forcedReplays  *obs.Counter

	// remoteMaps counts multi-GPU remote-mapping services. It is
	// registered by New only when a residency map is wired, so
	// single-GPU metric snapshots carry no new names.
	remoteMaps *obs.Counter

	// batchFaults distributes fault count per batch (the paper's batch
	// occupancy); batchNs distributes wall time per batch.
	batchFaults *obs.HistogramMetric
	batchNs     *obs.HistogramMetric
}

func newMetrics() metrics {
	reg := obs.NewRegistry()
	return metrics{
		reg:               reg,
		passes:            reg.Counter("passes"),
		polls:             reg.Counter("polls"),
		batches:           reg.Counter("batches"),
		faultsFetched:     reg.Counter("faults_fetched"),
		faultsDeduped:     reg.Counter("faults_deduped"),
		staleBins:         reg.Counter("stale_bins"),
		dmaFailures:       reg.Counter("dma_failures"),
		dmaRetries:        reg.Counter("dma_retries"),
		dmaGiveups:        reg.Counter("dma_giveups"),
		dmaBackoffNs:      reg.Counter("dma_backoff_ns"),
		evictions:         reg.Counter("evictions"),
		evictedPages:      reg.Counter("evicted_pages"),
		evictedDirtyPages: reg.Counter("evicted_dirty_pages"),
		evictStalls:       reg.Counter("evict_stalls"),
		migratedPages:     reg.Counter("migrated_pages"),
		demandPages:       reg.Counter("demand_pages"),
		prefetchedPages:   reg.Counter("prefetched_pages"),
		readdupPages:      reg.Counter("readdup_pages"),
		flushes:           reg.Counter("flushes"),
		flushDiscarded:    reg.Counter("flush_discarded"),
		replays:           reg.Counter("replays"),
		forcedReplays:     reg.Counter("forced_replays"),
		batchFaults:       reg.Histogram("batch_faults"),
		batchNs:           reg.Histogram("batch_ns"),
	}
}

// Metrics exposes the driver's registry for uniform consumption
// (uvmreport, exporters, tests).
func (d *Driver) Metrics() *obs.Registry { return d.m.reg }

// Counters renders the registry as the legacy counter set. The snapshot
// is rebuilt per call; mutate metrics through the driver, not this view.
func (d *Driver) Counters() *stats.CounterSet { return d.m.reg.CounterSet() }
