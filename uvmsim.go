// Package uvmsim is a discrete-event simulation of NVIDIA's Unified
// Virtual Memory (UVM) stack, reproducing the measurement study
// "Demystifying GPU UVM Cost with Deep Runtime and Workload Analysis"
// (Allen & Ge, IPDPS 2021) in pure Go.
//
// The library assembles a simulated GPU (SMs, warps, replayable faults,
// fault buffer), the UVM driver pipeline (fault batching, VABlock
// binning, servicing, four replay policies), the two-stage tree-based
// density prefetcher, LRU VABlock eviction, a chunked physical memory
// allocator, and a PCIe-like interconnect. The paper's benchmark suite is
// available as page-granularity workload generators, and every table and
// figure from the paper's evaluation can be regenerated through the
// experiment registry (see RunExperiment and cmd/uvmbench).
//
// Quick start:
//
//	cfg := uvmsim.DefaultConfig(96 << 20) // 96 MB framebuffer
//	sys, err := uvmsim.NewSystem(cfg)
//	if err != nil { ... }
//	kernel, err := uvmsim.BuildWorkload(sys, "regular", 32<<20, uvmsim.DefaultWorkloadParams())
//	if err != nil { ... }
//	res, err := sys.RunUVM(kernel)
//	fmt.Println(res.TotalTime, res.Faults, res.Breakdown.String())
package uvmsim

import (
	"io"

	"uvmsim/internal/chaos"
	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/exp"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// Core system types.
type (
	// Config describes a complete simulated system.
	Config = core.Config
	// System is an assembled simulated machine.
	System = core.System
	// RunResult reports one kernel execution.
	RunResult = core.RunResult
	// Kernel is a grid of thread blocks over page-granularity accesses.
	Kernel = gpusim.Kernel
	// WorkloadParams tunes workload kernel shapes.
	WorkloadParams = workloads.Params
	// Table is a rendered experiment result.
	Table = stats.Table
	// Breakdown is driver time attributed to the paper's cost categories.
	Breakdown = stats.Breakdown
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// ReplayPolicy selects when fault replays are issued.
	ReplayPolicy = driver.ReplayPolicy
	// Scale fixes experiment hardware scale and seed.
	Scale = exp.Scale
	// Range is one managed allocation.
	Range = mem.Range
	// AccessMode selects one of UVM's three page access behaviors.
	AccessMode = mem.AccessMode
	// InjectConfig configures the deterministic fault-injection layer
	// (set Config.Inject to enable seeded chaos in a system).
	InjectConfig = inject.Config
	// ChaosCampaign describes a fault-injection convergence sweep.
	ChaosCampaign = chaos.Campaign
	// ChaosCell is one (workload, policy, seed) result of a campaign.
	ChaosCell = chaos.Cell
)

// DefaultInjectConfig returns a moderate all-layers injection campaign
// seeded with seed.
func DefaultInjectConfig(seed uint64) InjectConfig { return inject.DefaultConfig(seed) }

// RunChaos executes a fault-injection campaign and returns one cell per
// (workload, policy, seed) combination.
func RunChaos(c ChaosCampaign) ([]ChaosCell, error) { return chaos.Run(c) }

// DefaultChaosCampaign returns the standard convergence sweep run by
// cmd/uvmchaos.
func DefaultChaosCampaign() ChaosCampaign { return chaos.DefaultCampaign() }

// UVM access behaviors (paper §III-A).
const (
	// ModeMigrate is paged migration via far-faults (the default).
	ModeMigrate = mem.ModeMigrate
	// ModeRemoteMap maps host memory without migrating it.
	ModeRemoteMap = mem.ModeRemoteMap
	// ModeReadDup duplicates read-only data on both sides.
	ModeReadDup = mem.ModeReadDup
)

// Replay policies (paper §III-E).
const (
	ReplayBlock      = driver.ReplayBlock
	ReplayBatch      = driver.ReplayBatch
	ReplayBatchFlush = driver.ReplayBatchFlush
	ReplayOnce       = driver.ReplayOnce
)

// Layout constants.
const (
	// PageSize is the OS page size (4 KB).
	PageSize = mem.PageSize
	// BigPageSize is the prefetcher's big-page upgrade size (64 KB).
	BigPageSize = mem.BigPageSize
	// VABlockSize is the default virtual address block size (2 MB).
	VABlockSize = mem.DefaultVABlockSize
)

// DefaultConfig returns the calibrated system configuration for a
// framebuffer of the given size. The paper's testbed (12 GB Titan V) is
// typically scaled down (e.g. 96 MB) with problem sizes scaled to match.
func DefaultConfig(gpuMemoryBytes int64) Config {
	return core.DefaultConfig(gpuMemoryBytes)
}

// NewSystem assembles a simulated system.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// DefaultWorkloadParams returns the workload shape used by the paper
// reproduction experiments.
func DefaultWorkloadParams() WorkloadParams { return workloads.DefaultParams() }

// WorkloadNames lists the benchmark suite in the paper's Table I order:
// regular, random, sgemm, stream, cufft, tealeaf, hpgmg, cusparse.
func WorkloadNames() []string { return workloads.Names() }

// BuildWorkload allocates managed memory on sys and builds the named
// workload kernel with roughly the given total data footprint.
func BuildWorkload(sys *System, name string, bytes int64, p WorkloadParams) (*Kernel, error) {
	b, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return b(sys, bytes, p)
}

// modeAllocator forces a UVM access behavior onto workload allocations.
type modeAllocator struct {
	sys  *System
	mode AccessMode
}

func (a modeAllocator) MallocManaged(size int64, label string) (*Range, error) {
	return a.sys.MallocManagedMode(size, label, a.mode)
}

// BuildWorkloadMode is BuildWorkload with every range allocated under
// the given access behavior (remote mapping, read duplication, ...).
func BuildWorkloadMode(sys *System, name string, bytes int64, mode AccessMode, p WorkloadParams) (*Kernel, error) {
	b, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return b(modeAllocator{sys, mode}, bytes, p)
}

// BuildSGEMM builds the tiled matrix-multiply workload with n×n
// matrices (footprint = 12n² bytes across A, B, C).
func BuildSGEMM(sys *System, n int, p WorkloadParams) (*Kernel, error) {
	return workloads.SGEMM(sys, n, p)
}

// DefaultScale returns the default experiment scale (1/128 of the
// paper's 12 GB Titan V).
func DefaultScale() Scale { return exp.DefaultScale() }

// ExperimentIDs lists the reproducible artifacts: fig1, fig3, fig4,
// fig5, fig7, fig8, fig9, fig10, tab1, tab2, the abl-* ablations, and
// the val-* validation harnesses (full-scale spot check, seed stability,
// calibration anchors).
func ExperimentIDs() []string { return exp.ExperimentIDs() }

// RunExperiment regenerates the named table or figure from the paper.
func RunExperiment(id string, sc Scale) ([]*Table, error) { return exp.Run(id, sc) }

// ApplyModuleParams mutates cfg using the real NVIDIA UVM kernel-module
// parameter names (uvm_perf_prefetch_enable, uvm_perf_prefetch_threshold,
// uvm_perf_fault_batch_count, uvm_perf_fault_replay_policy, ...), so
// configurations written for the actual driver translate directly.
func ApplyModuleParams(cfg *Config, params string) error {
	return core.ApplyModuleParams(cfg, params)
}

// TraceAccess is one access of an externally captured page trace.
type TraceAccess = workloads.TraceAccess

// ParseTrace reads a page-access trace: either a two-column
// "page_index,rw" CSV or the cmd/faulttrace export format.
func ParseTrace(r io.Reader) ([]TraceAccess, error) { return workloads.ParseTrace(r) }

// BuildReplay builds a kernel that re-issues a captured page trace
// against a managed allocation sized to the trace's footprint.
func BuildReplay(sys *System, accesses []TraceAccess, p WorkloadParams) (*Kernel, error) {
	return workloads.Replay(sys, accesses, p)
}
