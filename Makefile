GO ?= go

.PHONY: check build vet test race bench benchall bench_baseline benchcheck allocguard chaos resumecheck servecheck distcheck logcheck fleetchaos multigpucheck clean

# The full verification gate: compile everything, vet, run the test
# suite under the race detector, hold the observability layer and hot
# paths to their zero-alloc contracts, gate benchmark regressions
# against the committed baseline, smoke the serving layer end-to-end,
# kill-and-recover the distributed sweep fabric, chaos-test the
# replicated cache tier, validate the fleet's structured telemetry
# against its schema, and hold the multi-GPU model to its determinism
# and K=1-compatibility pins.
check: build vet race allocguard benchcheck servecheck distcheck fleetchaos logcheck multigpucheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -timeout 15m ./...

# The curated benchmark suite: engine/driver/tree/mem microbenchmarks
# plus the Fig. 1 macro suite, all with allocation counts and fixed
# seeds, written machine-readable to results/bench_<date>.json (raw
# text on stderr). Numbers are recorded against EXPERIMENTS.md's
# "Simulator performance" baselines.
bench:
	mkdir -p results
	{ $(GO) test -bench=. -benchmem -run=^$$ -count=1 \
	      ./internal/sim ./internal/mem ./internal/tree ./internal/driver ./internal/core ; \
	  $(GO) test -bench 'BenchmarkFig1AccessLatency' -benchtime 1x -benchmem -run=^$$ -count=1 . ; } \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -o results/bench_$$(date +%Y%m%d).json

# Everything with a Benchmark function, including the full paper-artifact
# regeneration benches at the repo root (slow). For serving-layer
# throughput (cold vs warm cache), run uvmload twice with the same seed
# against a running uvmserved — see EXPERIMENTS.md "Serving layer":
#   go run ./cmd/uvmserved -addr :8844 &
#   go run ./cmd/uvmload -url http://localhost:8844 -n 200 -c 8
benchall:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Benchmark regression gate: rerun the guarded suite and compare against
# the committed results/bench_baseline.json. >10% alloc/op growth on a
# guarded benchmark fails (deterministic, strict); ns/op is a noise-aware
# backstop (default 30%, BENCH_TIME_TOL=10 on quiet hardware).
benchcheck:
	sh scripts/bench_check.sh

# Regenerate the committed baseline after an intentional perf change.
bench_baseline:
	sh scripts/bench_check.sh --update-baseline

# Alloc-guard: the nil-sink tracer/lifecycle fast path, the driver's
# batch preprocess, the prefetch planner, the bitmap word-scan
# primitives, and LRU churn must all stay allocation-free in steady
# state, and the instrumented end-to-end benchmark must run.
allocguard:
	$(GO) test ./internal/obs -run TestNilTracerAllocFree -count=1
	$(GO) test ./internal/driver -run 'TestPreprocessSteadyStateAllocFree|TestFetchSteadyStateAllocFree' -count=1
	$(GO) test ./internal/tree -run TestPlanSteadyStateAllocFree -count=1
	$(GO) test ./internal/mem -run TestBitmapWordPrimitivesAllocFree -count=1
	$(GO) test ./internal/evict -run TestLRUChurnAllocFree -count=1
	$(GO) test ./internal/multigpu -run 'TestClassifySteadyStateAllocFree|TestRemoteAccessSteadyStateAllocFree|TestFabricStreamSteadyStateAllocFree' -count=1
	$(GO) test ./internal/core -bench BenchmarkDriverService -benchtime 2x -benchmem -run=^$$

# Seeded fault-injection campaign across workloads and replay policies;
# exits non-zero if any cell fails to converge.
chaos:
	$(GO) run ./cmd/uvmchaos

# Kill-and-resume gate: SIGINT uvmsweep mid-run, resume from its journal,
# diff against an uninterrupted run at -jobs 1/4/8.
resumecheck:
	sh scripts/resume_check.sh

# Serving-layer e2e smoke: start uvmserved, prove cached re-submission
# is byte-identical and faster, force 429 backpressure under a tiny
# queue with uvmload, and SIGTERM-drain expecting exit 0.
servecheck:
	sh scripts/serve_check.sh

# Distributed-fabric gate: coordinator + 3 workers under -race, kill -9
# one worker mid-sweep, inject a duplicate completion, require the
# merged output byte-identical to a serial run and exit 0. A telemetry
# leg traces one ID through coordinator, worker, and serve tier and
# validates the flight dump an injected failure produces.
distcheck:
	sh scripts/dist_check.sh

# Cache-tier chaos gate: 3 uvmserved nodes behind netchaos proxies,
# partition one and kill -9 another mid-sweep, require the merged table
# byte-identical to a serial run, nothing quarantined, breaker-open
# visible in /metrics and the flight dump.
fleetchaos:
	sh scripts/fleet_chaos_check.sh

# Telemetry-schema gate: every structured line a live JSON-mode server
# emits must validate (uvmlogcheck), malformed lines and flight dumps
# must be rejected.
logcheck:
	sh scripts/log_check.sh

# Multi-GPU gate: the pinned K=1 and K=4 goldens must hold under -race,
# a K=4 policy sweep through the real uvmsweep binary must be
# byte-identical at -jobs 1/4/8, and an explicit -gpus 1 run must
# collapse to the implicit single-GPU default.
multigpucheck:
	sh scripts/multigpu_check.sh

clean:
	$(GO) clean ./...
