GO ?= go

.PHONY: check build vet test race chaos clean

# The full verification gate: compile everything, vet, and run the test
# suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection campaign across workloads and replay policies;
# exits non-zero if any cell fails to converge.
chaos:
	$(GO) run ./cmd/uvmchaos

clean:
	$(GO) clean ./...
