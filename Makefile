GO ?= go

.PHONY: check build vet test race bench allocguard chaos resumecheck servecheck distcheck clean

# The full verification gate: compile everything, vet, run the test
# suite under the race detector, hold the observability layer to its
# zero-overhead-when-disabled contract, smoke the serving layer
# end-to-end, and kill-and-recover the distributed sweep fabric.
check: build vet race allocguard servecheck distcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -timeout 15m ./...

# Every benchmark with allocation counts: paper-artifact regeneration
# benches at the repo root plus the engine/microbenchmarks. Numbers are
# recorded against EXPERIMENTS.md's "Simulator performance" baselines.
# For serving-layer throughput (cold vs warm cache), run uvmload twice
# with the same seed against a running uvmserved — see EXPERIMENTS.md
# "Serving layer":
#   go run ./cmd/uvmserved -addr :8844 &
#   go run ./cmd/uvmload -url http://localhost:8844 -n 200 -c 8
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Alloc-guard smoke: the nil-sink tracer/lifecycle fast path must stay
# allocation-free, and the instrumented end-to-end benchmark must run.
allocguard:
	$(GO) test ./internal/obs -run TestNilTracerAllocFree -count=1
	$(GO) test ./internal/core -bench BenchmarkDriverService -benchtime 2x -benchmem -run=^$$

# Seeded fault-injection campaign across workloads and replay policies;
# exits non-zero if any cell fails to converge.
chaos:
	$(GO) run ./cmd/uvmchaos

# Kill-and-resume gate: SIGINT uvmsweep mid-run, resume from its journal,
# diff against an uninterrupted run at -jobs 1/4/8.
resumecheck:
	sh scripts/resume_check.sh

# Serving-layer e2e smoke: start uvmserved, prove cached re-submission
# is byte-identical and faster, force 429 backpressure under a tiny
# queue with uvmload, and SIGTERM-drain expecting exit 0.
servecheck:
	sh scripts/serve_check.sh

# Distributed-fabric gate: coordinator + 3 workers under -race, kill -9
# one worker mid-sweep, inject a duplicate completion, require the
# merged output byte-identical to a serial run and exit 0.
distcheck:
	sh scripts/dist_check.sh

clean:
	$(GO) clean ./...
