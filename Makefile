GO ?= go

.PHONY: check build vet test race bench chaos clean

# The full verification gate: compile everything, vet, and run the test
# suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every benchmark with allocation counts: paper-artifact regeneration
# benches at the repo root plus the engine/microbenchmarks. Numbers are
# recorded against EXPERIMENTS.md's "Simulator performance" baselines.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Seeded fault-injection campaign across workloads and replay policies;
# exits non-zero if any cell fails to converge.
chaos:
	$(GO) run ./cmd/uvmchaos

clean:
	$(GO) clean ./...
