package uvmsim_test

import (
	"fmt"
	"strings"

	"uvmsim"
)

// The basic flow: build a system, run a workload under demand paging,
// inspect the result.
func Example() {
	cfg := uvmsim.DefaultConfig(64 << 20) // 64 MiB framebuffer
	sys, err := uvmsim.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	k, err := uvmsim.BuildWorkload(sys, "regular", 8<<20, uvmsim.DefaultWorkloadParams())
	if err != nil {
		panic(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Faults > 0, "moved MiB:", res.BytesH2D>>20)
	// Output: completed: true moved MiB: 8
}

// Configs translate directly from real UVM kernel-module parameters.
func ExampleApplyModuleParams() {
	cfg := uvmsim.DefaultConfig(64 << 20)
	err := uvmsim.ApplyModuleParams(&cfg,
		"uvm_perf_prefetch_enable=0 uvm_perf_fault_batch_count=128")
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg.PrefetchPolicy, cfg.Driver.BatchSize)
	// Output: none 128
}

// Captured page traces replay against any configuration.
func ExampleParseTrace() {
	trace := "page_index,rw\n0,w\n1,w\n2,r\n"
	accs, err := uvmsim.ParseTrace(strings.NewReader(trace))
	if err != nil {
		panic(err)
	}
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(64 << 20))
	if err != nil {
		panic(err)
	}
	k, err := uvmsim.BuildReplay(sys, accs, uvmsim.DefaultWorkloadParams())
	if err != nil {
		panic(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(accs), "accesses,", res.Faults, "faults")
	// Output: 3 accesses, 3 faults
}

// The three UVM access behaviors from §III-A of the paper.
func ExampleBuildWorkloadMode() {
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(64 << 20))
	if err != nil {
		panic(err)
	}
	k, err := uvmsim.BuildWorkloadMode(sys, "random", 8<<20, uvmsim.ModeRemoteMap,
		uvmsim.DefaultWorkloadParams())
	if err != nil {
		panic(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		panic(err)
	}
	fmt.Println("faults:", res.Faults, "remote accesses:", res.GPU.RemoteAccesses)
	// Output: faults: 0 remote accesses: 2048
}
