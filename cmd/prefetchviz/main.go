// Command prefetchviz renders the density-prefetcher decision for one
// VABlock as ASCII art, reproducing the concept of the paper's Fig. 6:
// given a set of resident pages and a batch of faulted pages, it shows
// the per-level subtree occupancy, which subtree each fault selects as
// its prefetch region, and the final fetch set.
//
// Usage:
//
//	prefetchviz -pages 16 -resident 0-7 -fault 8
//	prefetchviz -pages 512 -fault 5 -threshold 51
//	prefetchviz -pages 512 -resident 0-255 -fault 300 -no-bigpages
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/mem"
	"uvmsim/internal/tree"
)

func main() {
	var (
		pages     = flag.Int("pages", 16, "pages per VABlock (power of two >= 16; paper uses 512)")
		resident  = flag.String("resident", "", "resident page list, e.g. 0-7,12")
		fault     = flag.String("fault", "0", "faulted page list, e.g. 8,9")
		threshold = flag.Int("threshold", tree.DefaultThreshold, "density threshold percent")
		noBig     = flag.Bool("no-bigpages", false, "disable the 64KB big-page upgrade stage")
	)
	flag.Parse()

	geom, err := mem.NewGeometry(int64(*pages) * mem.PageSize)
	if err != nil {
		fatal(err)
	}
	res, err := parseSet(*resident, *pages)
	if err != nil {
		fatal(fmt.Errorf("bad -resident: %w", err))
	}
	flt, err := parseSet(*fault, *pages)
	if err != nil {
		fatal(fmt.Errorf("bad -fault: %w", err))
	}

	pl := &tree.Planner{Threshold: *threshold, BigPages: !*noBig}
	out := pl.Plan(geom, res, flt, *pages)

	fmt.Printf("VABlock of %d pages, density threshold %d%%, big pages %v\n\n",
		*pages, *threshold, !*noBig)
	printRow("resident", res, *pages, 'R')
	printRow("faulted ", flt, *pages, 'F')

	// Occupancy tree over resident+faulted+upgraded pages.
	mask := res.Clone()
	mask.Or(out.Fetch)
	levels := tree.Snapshot(geom, mask, *pages)
	fmt.Println("\noccupancy tree (count/size per node, * = node exceeds threshold):")
	for l := len(levels) - 1; l >= 0; l-- {
		span := 1 << uint(l)
		var sb strings.Builder
		fmt.Fprintf(&sb, "  L%-2d ", l)
		for n, c := range levels[l] {
			mark := " "
			if c*100 > *threshold*span {
				mark = "*"
			}
			fmt.Fprintf(&sb, "[%d/%d%s]", c, span, mark)
			if (n+1)*span >= *pages {
				break
			}
		}
		fmt.Println(sb.String())
		if *pages>>uint(l) > 64 {
			// Skip leaf-adjacent levels that would not fit on screen.
			if l <= 4 {
				fmt.Println("  ... (lower levels elided)")
				break
			}
		}
	}

	fmt.Println()
	printRow("fetch   ", out.Fetch, *pages, '#')
	fmt.Printf("\ndemanded pages needing migration: %d\n", out.Faulted)
	fmt.Printf("prefetched pages:                 %d\n", out.Prefetched)
	fmt.Printf("total pages fetched:              %d\n", out.Fetch.Count())
}

func printRow(label string, bm *mem.Bitmap, pages int, ch byte) {
	var sb strings.Builder
	for i := 0; i < pages; i++ {
		if bm.Get(i) {
			sb.WriteByte(ch)
		} else {
			sb.WriteByte('.')
		}
	}
	s := sb.String()
	const width = 64
	for off := 0; off < len(s); off += width {
		end := off + width
		if end > len(s) {
			end = len(s)
		}
		if off == 0 {
			fmt.Printf("%s %s\n", label, s[off:end])
		} else {
			fmt.Printf("%s %s\n", strings.Repeat(" ", len(label)), s[off:end])
		}
	}
}

// parseSet parses "0-7,12,30-31" into a bitmap.
func parseSet(s string, pages int) (*mem.Bitmap, error) {
	bm := mem.NewBitmap(pages)
	if strings.TrimSpace(s) == "" {
		return bm, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, err
		}
		if a > b || a < 0 || b >= pages {
			return nil, fmt.Errorf("range %q out of [0,%d)", part, pages)
		}
		for i := a; i <= b; i++ {
			bm.Set(i)
		}
	}
	return bm, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prefetchviz: %v\n", err)
	os.Exit(1)
}
