// Command uvmreport runs one workload with tracing enabled and prints a
// deep workload analysis: the driver-phase breakdown, derived locality
// metrics, per-range activity, hot blocks, and an ASCII rendering of the
// paper's Fig. 7/8 access-pattern scatter (faults as dots, evictions as
// E marks).
//
// Usage:
//
//	uvmreport -workload random
//	uvmreport -workload sgemm -footprint 1.2
//	uvmreport -workload tealeaf -prefetch none -width 100 -height 24
package main

import (
	"flag"
	"fmt"
	"os"

	"uvmsim/internal/analyze"
	"uvmsim/internal/core"
	"uvmsim/internal/govern"
	"uvmsim/internal/plot"
	"uvmsim/internal/trace"
	"uvmsim/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload  = flag.String("workload", "regular", "workload name")
		gpuMB     = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		footprint = flag.Float64("footprint", 0.5, "data footprint as a fraction of GPU memory")
		prefetch  = flag.String("prefetch", "density", "prefetch policy")
		evictPol  = flag.String("evict", "lru", "eviction policy")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		width     = flag.Int("width", 78, "chart width")
		height    = flag.Int("height", 20, "chart height")
		noChart   = flag.Bool("no-chart", false, "skip the ASCII scatter")
		counters  = flag.Bool("counters", true, "print the driver event counters")
	)
	var gf govern.Flags
	gf.Register()
	flag.Parse()

	ctx, stop := gf.Context()
	defer stop()

	cfg := core.DefaultConfig(*gpuMB << 20)
	cfg.Seed = *seed
	cfg.PrefetchPolicy = *prefetch
	cfg.EvictPolicy = *evictPol
	cfg.TraceCapacity = -1
	cfg.Cancel = govern.WatchContext(ctx)
	cfg.Budget = gf.Budget()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return fatal(err)
	}
	builder, err := workloads.Get(*workload)
	if err != nil {
		return fatal(err)
	}
	p := workloads.DefaultParams()
	p.Seed = *seed + 100
	k, err := builder(sys, int64(*footprint*float64(*gpuMB<<20)), p)
	if err != nil {
		return fatal(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		return fatal(err)
	}

	fmt.Printf("%s: %.0f%% of %d MiB GPU, prefetch=%s, evict=%s\n",
		*workload, *footprint*100, *gpuMB, *prefetch, *evictPol)
	fmt.Printf("total=%v  driver breakdown: %s\n\n", res.TotalTime, res.Breakdown.String())

	if *counters {
		// The driver's metrics registry in name order: event counters
		// (including the fault-buffer health accounting — overflow a report
		// would otherwise silently absorb), gauges, and the batch-shape
		// histograms with their percentiles.
		fmt.Println("driver metrics:")
		for _, s := range sys.Metrics().Samples() {
			if s.Hist != nil {
				fmt.Printf("  %-26s n=%-8d mean=%-10v p50=%-10v p99=%-10v max=%v\n",
					s.Name, s.Hist.Count(), s.Hist.Mean(),
					s.Hist.Quantile(0.5), s.Hist.Quantile(0.99), s.Hist.Max())
				continue
			}
			fmt.Printf("  %-26s %d\n", s.Name, s.Value)
		}
		fmt.Println()
	}

	rep, err := analyze.Analyze(sys.Trace(), sys.Space())
	if err != nil {
		return fatal(err)
	}
	if err := rep.Table("workload analysis").WriteText(os.Stdout); err != nil {
		return fatal(err)
	}
	fmt.Println()
	if err := rep.RangeTable().WriteText(os.Stdout); err != nil {
		return fatal(err)
	}

	hot := analyze.HotBlocks(sys.Trace(), 5)
	if len(hot) > 0 {
		fmt.Println("\nhottest VABlocks by fault count:")
		for _, h := range hot {
			fmt.Printf("  block %-6d %d faults\n", h.Block, h.Faults)
		}
	}

	if !*noChart {
		fmt.Println()
		fmt.Print(scatter(sys, *width, *height))
	}
	return govern.ExitOK
}

// scatter renders the Fig. 7/8-style access pattern: fault occurrence
// order on x, gap-free page index on y, evictions overlaid as E.
func scatter(sys *core.System, w, h int) string {
	comp := trace.NewCompressor(sys.Space())
	var fx, fy, ex, ey []float64
	n := 0
	for _, e := range sys.Trace().Events() {
		idx := comp.Index(e.Page)
		if idx < 0 {
			continue
		}
		switch e.Kind {
		case trace.KindFault:
			fx = append(fx, float64(n))
			fy = append(fy, float64(idx))
			n++
		case trace.KindEvict:
			ex = append(ex, float64(n))
			ey = append(ey, float64(idx))
		}
	}
	c := plot.NewCanvas(w, h).
		Title("access pattern (x = fault occurrence, y = page index, E = eviction)").
		Labels("fault occurrence", "page")
	c.SetScale(0, float64(maxInt(n-1, 1)), 0, float64(comp.Total()-1))
	c.Scatter(fx, fy, '.')
	c.Scatter(ex, ey, 'E')
	return c.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fatal classifies err through the governance taxonomy: a SIGINT exits
// 130 and a tripped budget exits 3 instead of a generic 1.
func fatal(err error) int {
	st := govern.StatusOf(err)
	fmt.Fprintf(os.Stderr, "uvmreport: %s: %v\n", st.State, err)
	return govern.ExitCode(st.State)
}
