// Command uvmload drives a running uvmserved with a seeded request mix
// and reports throughput, latency percentiles, and cache behaviour.
//
// The generator draws single-cell requests from a bounded configuration
// space (-distinct), so a run naturally mixes cold misses, warm cache
// hits, and coalesced duplicates — the exact traffic shape the serving
// layer exists for. The draw sequence is a pure function of -seed:
// identical invocations issue identical request streams.
//
// 429 rejections are expected output under overload (that is the
// admission contract), so they are counted and reported, not treated as
// failures. Transport errors are failures.
//
// Usage:
//
//	uvmload -url http://127.0.0.1:8844 -n 200 -c 8
//	uvmload -n 500 -c 16 -distinct 8 -gpu-mem 32 -max-events 2000000
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"uvmsim/internal/serve"
	"uvmsim/internal/serve/client"
	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// sample is one completed request's accounting.
type sample struct {
	latency time.Duration
	status  int
	source  serve.Source
	retries int
	err     error
}

func run() int {
	var (
		url      = flag.String("url", "http://127.0.0.1:8844", "uvmserved base URL")
		n        = flag.Int("n", 200, "total requests")
		conc     = flag.Int("c", 8, "concurrent workers")
		seed     = flag.Int64("seed", 1, "request-mix seed")
		distinct = flag.Int("distinct", 16, "distinct configurations in the mix (smaller = hotter cache)")
		gpuMB    = flag.Int64("gpu-mem", 32, "GPU framebuffer per request in MiB")
		events   = flag.Uint64("max-events", 0, "per-request event budget (0 = unlimited)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "per-request timeout")
		retries  = flag.Int("retries", 0, "client retries per request on 429/transport errors (capped backoff honoring Retry-After)")
	)
	var tf telemetry.Flags
	tf.Register()
	flag.Parse()
	if *n < 1 || *conc < 1 || *distinct < 1 {
		fmt.Fprintln(os.Stderr, "uvmload: -n, -c, and -distinct must be >= 1")
		return 2
	}

	// Build the configuration space, then draw the request stream from it
	// deterministically. Knob lists are small and cheap per cell so the
	// load exercises the server, not the simulator.
	prefetch := []string{"none", "density", "adaptive"}
	footprints := []float64{0.25, 0.5, 0.75}
	batches := []int{128, 256}
	space := make([]serve.SimRequest, *distinct)
	rng := rand.New(rand.NewSource(*seed))
	for i := range space {
		space[i] = serve.SimRequest{
			Workload:  "regular",
			GPUMemMiB: *gpuMB,
			Seed:      uint64(rng.Intn(4) + 1),
			Footprint: footprints[rng.Intn(len(footprints))],
			Prefetch:  prefetch[rng.Intn(len(prefetch))],
			Batch:     batches[rng.Intn(len(batches))],
			Budget:    serve.BudgetRequest{MaxEvents: *events},
			TimeoutMs: timeout.Milliseconds(),
		}
	}
	stream := make([]serve.SimRequest, *n)
	for i := range stream {
		stream[i] = space[rng.Intn(len(space))]
	}

	c := client.New(*url, nil)
	if *retries > 0 {
		c = c.WithRetry(client.RetryPolicy{MaxRetries: *retries})
	}
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "uvmload: server not healthy at %s: %v\n", *url, err)
		return 1
	}

	// Every request carries a distinct trace ID derived from one root, so
	// a whole load run is greppable server-side as <root>-cNNN.
	flight := tf.Flight()
	lg := tf.Logger("uvmload", flight)
	rootTrace := telemetry.NewID()
	lg.Info("load run starting", "trace_id", rootTrace, "requests", *n, "concurrency", *conc)

	samples := make([]sample, *n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(stream) {
					return
				}
				rctx := telemetry.WithTraceID(ctx, telemetry.CellTraceID(rootTrace, i))
				res, err := c.Sim(rctx, stream[i])
				if err != nil {
					s := sample{err: err}
					if res != nil {
						s.retries = res.Retries
					}
					samples[i] = s
					continue
				}
				samples[i] = sample{latency: res.Latency, status: res.Status, source: res.Source, retries: res.Retries}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(samples, elapsed, *conc)
	for _, s := range samples {
		if s.err != nil {
			return 1
		}
	}
	return 0
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(samples []sample, elapsed time.Duration, conc int) {
	var ok, busy, other, failed, retried, retries int
	bySource := map[serve.Source][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		if s.retries > 0 {
			retried++
			retries += s.retries
		}
		switch {
		case s.err != nil:
			failed++
			continue
		case s.status >= 200 && s.status < 300:
			ok++
		case s.status == 429:
			busy++
		default:
			other++
		}
		all = append(all, s.latency)
		bySource[s.source] = append(bySource[s.source], s.latency)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Printf("uvmload: %d requests, concurrency %d, %.2fs wall, %.1f req/s\n",
		len(samples), conc, elapsed.Seconds(), float64(len(samples))/elapsed.Seconds())
	fmt.Printf("  ok %d   busy(429) %d   other %d   transport-failed %d\n", ok, busy, other, failed)
	fmt.Printf("  retries %d across %d requests\n", retries, retried)
	fmt.Printf("  latency p50 %s  p90 %s  p99 %s  max %s\n",
		percentile(all, 0.50), percentile(all, 0.90), percentile(all, 0.99), percentile(all, 1.0))
	for _, src := range []serve.Source{serve.SourceMiss, serve.SourceHit, serve.SourceCoalesced} {
		lats := bySource[src]
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("  %-9s %5d   p50 %-12s p99 %s\n", src, len(lats), percentile(lats, 0.50), percentile(lats, 0.99))
	}
}
