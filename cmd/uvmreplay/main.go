// Command uvmreplay drives the simulator with an externally captured
// page-access trace: either a two-column "page_index,rw" CSV or the
// cmd/faulttrace export format. This lets fault logs from real UVM
// instrumentation (or from other simulators) be replayed against any
// driver configuration.
//
// Usage:
//
//	faulttrace -workload random > random.csv
//	uvmreplay -trace random.csv -prefetch none
//	uvmreplay -trace app_pages.csv -gpu-mem 48 -evict access-aware
package main

import (
	"flag"
	"fmt"
	"os"

	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/workloads"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (page_index,rw CSV or faulttrace export); - for stdin")
		gpuMB     = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		prefetch  = flag.String("prefetch", "density", "prefetch policy")
		evictPol  = flag.String("evict", "lru", "eviction policy")
		replayPol = flag.String("replay", "batchflush", "replay policy")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "uvmreplay: -trace <file> required")
		os.Exit(2)
	}

	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	accesses, err := workloads.ParseTrace(in)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(*gpuMB << 20)
	cfg.Seed = *seed
	cfg.PrefetchPolicy = *prefetch
	cfg.EvictPolicy = *evictPol
	pol, err := driver.ParseReplayPolicy(*replayPol)
	if err != nil {
		fatal(err)
	}
	cfg.Driver.Policy = pol
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	p := workloads.DefaultParams()
	p.Seed = *seed + 100
	k, err := workloads.Replay(sys, accesses, p)
	if err != nil {
		fatal(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		fatal(err)
	}
	footprint := sys.Space().TotalPages()
	fmt.Printf("replayed %d accesses over %d pages (%.1f MiB) on a %d MiB GPU\n",
		len(accesses), footprint, float64(footprint)*4/1024, *gpuMB)
	fmt.Printf("total=%v faults=%d evictions=%d h2d=%.1fMB d2h=%.1fMB\n",
		res.TotalTime, res.Faults, res.Evictions,
		float64(res.BytesH2D)/(1<<20), float64(res.BytesD2H)/(1<<20))
	fmt.Printf("breakdown: %s\n", res.Breakdown.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvmreplay:", err)
	os.Exit(1)
}
