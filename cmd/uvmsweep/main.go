// Command uvmsweep runs a generic parameter sweep: one workload crossed
// with any combination of prefetch policy, density threshold, replay
// policy, eviction policy, batch size, VABlock granularity, and footprint
// fraction, printing one row per configuration.
//
// Usage:
//
//	uvmsweep -workload random -footprints 0.5,1.25 -prefetch none,density,adaptive
//	uvmsweep -workload sgemm -footprints 0.9,1.2,1.5 -evict lru,access-aware
//	uvmsweep -workload stream -batch 64,256,1024 -replay batch,batchflush
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		footprints = flag.String("footprints", "0.5", "comma-separated data footprints as fractions of GPU memory")
		prefetch   = flag.String("prefetch", "density", "comma-separated prefetch policies")
		replay     = flag.String("replay", "batchflush", "comma-separated replay policies")
		evictPol   = flag.String("evict", "lru", "comma-separated eviction policies")
		batch      = flag.String("batch", "256", "comma-separated fault batch sizes")
		vablock    = flag.String("vablock", "2048", "comma-separated VABlock sizes in KiB")
		csvOut     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	fps, err := parseFloats(*footprints)
	if err != nil {
		fatal(err)
	}
	batches, err := parseInts(*batch)
	if err != nil {
		fatal(err)
	}
	vablocks, err := parseInts(*vablock)
	if err != nil {
		fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("sweep: %s on %d MiB GPU", *workload, *gpuMB),
		"footprint_pct", "prefetch", "replay", "evict", "batch", "vablock_kb",
		"total_ms", "faults", "evictions", "h2d_mb", "d2h_mb", "stall_ms")

	for _, fp := range fps {
		for _, pf := range strings.Split(*prefetch, ",") {
			for _, rp := range strings.Split(*replay, ",") {
				pol, err := driver.ParseReplayPolicy(rp)
				if err != nil {
					fatal(err)
				}
				for _, ev := range strings.Split(*evictPol, ",") {
					for _, bs := range batches {
						for _, vb := range vablocks {
							row, err := runOne(*workload, *gpuMB<<20, *seed, fp, pf, pol, ev, bs, int64(vb)<<10)
							if err != nil {
								fatal(err)
							}
							t.AddRow(row...)
						}
					}
				}
			}
		}
	}
	if *csvOut {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func runOne(workload string, gpuMem int64, seed uint64, fp float64, pf string,
	rp driver.ReplayPolicy, ev string, batch int, vablock int64) ([]interface{}, error) {
	cfg := core.DefaultConfig(gpuMem)
	cfg.Seed = seed
	cfg.PrefetchPolicy = pf
	cfg.EvictPolicy = ev
	if strings.Contains(ev, "access-aware") {
		cfg.GPU.AccessCounters = true
	}
	cfg.Driver.Policy = rp
	cfg.Driver.BatchSize = batch
	cfg.VABlockSize = vablock
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	builder, err := workloads.Get(workload)
	if err != nil {
		return nil, err
	}
	p := workloads.DefaultParams()
	p.Seed = seed + 100
	k, err := builder(sys, int64(fp*float64(gpuMem)), p)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		return nil, err
	}
	return []interface{}{
		fp * 100, pf, rp.String(), ev, batch, vablock >> 10,
		float64(res.TotalTime.Micros()) / 1000, res.Faults, res.Evictions,
		float64(res.BytesH2D) / (1 << 20), float64(res.BytesD2H) / (1 << 20),
		float64(res.GPU.StallTime.Micros()) / 1000,
	}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvmsweep:", err)
	os.Exit(1)
}
