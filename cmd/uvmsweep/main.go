// Command uvmsweep runs a generic parameter sweep: one workload crossed
// with any combination of prefetch policy, density threshold, replay
// policy, eviction policy, batch size, VABlock granularity, and footprint
// fraction, printing one row per configuration.
//
// Every flag combination is validated before anything runs, so a typo in
// the last policy name fails instantly instead of after earlier configs
// have simulated. Independent configurations fan out across -jobs worker
// goroutines (default: all CPUs); the output is byte-identical at every
// -jobs value, and -jobs 1 is the strictly serial path.
//
// Usage:
//
//	uvmsweep -workload random -footprints 0.5,1.25 -prefetch none,density,adaptive
//	uvmsweep -workload sgemm -footprints 0.9,1.2,1.5 -evict lru,access-aware
//	uvmsweep -workload stream -batch 64,256,1024 -replay batch,batchflush -jobs 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/obs"
	"uvmsim/internal/prof"
	"uvmsim/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		footprints = flag.String("footprints", "0.5", "comma-separated data footprints as fractions of GPU memory")
		prefetch   = flag.String("prefetch", "density", "comma-separated prefetch policies")
		replay     = flag.String("replay", "batchflush", "comma-separated replay policies")
		evictPol   = flag.String("evict", "lru", "comma-separated eviction policies")
		batch      = flag.String("batch", "256", "comma-separated fault batch sizes")
		vablock    = flag.String("vablock", "2048", "comma-separated VABlock sizes in KiB")
		jobs       = flag.Int("jobs", 0, "worker goroutines fanning configs out (0 = all CPUs, 1 = serial)")
		csvOut     = flag.Bool("csv", false, "emit CSV")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON with one process per sweep cell (load in Perfetto)")
		metricsOut = flag.String("metrics", "", "write every cell's metrics registry as CSV to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	fps, err := parseFloats(*footprints)
	if err != nil {
		return fail(err)
	}
	batches, err := parseInts(*batch)
	if err != nil {
		return fail(err)
	}
	vablocks, err := parseInts(*vablock)
	if err != nil {
		return fail(err)
	}
	vbBytes := make([]int64, len(vablocks))
	for i, vb := range vablocks {
		vbBytes[i] = int64(vb) << 10
	}

	s := &sweep.Spec{
		Workload:       *workload,
		GPUMemoryBytes: *gpuMB << 20,
		Seed:           *seed,
		Footprints:     fps,
		Prefetch:       splitList(*prefetch),
		Replay:         splitList(*replay),
		Evict:          splitList(*evictPol),
		Batch:          batches,
		VABlock:        vbBytes,
		Jobs:           *jobs,
	}
	if *traceOut != "" || *metricsOut != "" {
		s.Obs = obs.NewCollector()
		s.Lifecycle = true
	}
	// Fail fast: reject any bad name or bound before a single cell runs.
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	t, err := s.Run()
	if err != nil {
		return fail(err)
	}
	if *csvOut {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		return fail(err)
	}
	if s.Obs != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, s.Obs.WriteChromeTrace); err != nil {
				return fail(err)
			}
			fmt.Fprintf(os.Stderr, "# wrote %s (%d cells)\n", *traceOut, len(s.Obs.Cells()))
		}
		if *metricsOut != "" {
			if err := writeFile(*metricsOut, s.Obs.WriteMetricsCSV); err != nil {
				return fail(err)
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", *metricsOut)
		}
	}
	return 0
}

// writeFile creates path, streams write into it, and propagates Close
// errors so a full disk is reported rather than silently truncating.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "uvmsweep:", err)
	return 1
}
