// Command uvmsweep runs a generic parameter sweep: one workload crossed
// with any combination of prefetch policy, density threshold, replay
// policy, eviction policy, batch size, VABlock granularity, and footprint
// fraction, printing one row per configuration.
//
// Every flag combination is validated before anything runs, so a typo in
// the last policy name fails instantly instead of after earlier configs
// have simulated. Independent configurations fan out across -jobs worker
// goroutines (default: all CPUs); the output is byte-identical at every
// -jobs value, and -jobs 1 is the strictly serial path.
//
// Usage:
//
//	uvmsweep -workload random -footprints 0.5,1.25 -prefetch none,density,adaptive
//	uvmsweep -workload sgemm -footprints 0.9,1.2,1.5 -evict lru,access-aware
//	uvmsweep -workload stream -batch 64,256,1024 -replay batch,batchflush -jobs 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/atomicio"
	"uvmsim/internal/govern"
	"uvmsim/internal/obs"
	"uvmsim/internal/prof"
	"uvmsim/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		footprints = flag.String("footprints", "0.5", "comma-separated data footprints as fractions of GPU memory")
		prefetch   = flag.String("prefetch", "density", "comma-separated prefetch policies")
		replay     = flag.String("replay", "batchflush", "comma-separated replay policies")
		evictPol   = flag.String("evict", "lru", "comma-separated eviction policies")
		batch      = flag.String("batch", "256", "comma-separated fault batch sizes")
		vablock    = flag.String("vablock", "2048", "comma-separated VABlock sizes in KiB")
		jobs       = flag.Int("jobs", 0, "worker goroutines fanning configs out (0 = all CPUs, 1 = serial)")
		csvOut     = flag.Bool("csv", false, "emit CSV")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON with one process per sweep cell (load in Perfetto)")
		metricsOut = flag.String("metrics", "", "write every cell's metrics registry as CSV to this file")
		journalF   = flag.String("journal", "", "append every cell's outcome to this crash-safe JSONL journal")
		resume     = flag.Bool("resume", false, "replay -journal before running: completed cells are skipped, unfinished cells run")
		retries    = flag.Int("retries", 0, "retries per transiently-failed cell (bounded exponential backoff)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")
	)
	var gf govern.Flags
	gf.Register()
	flag.Parse()

	if *resume && *journalF == "" {
		fmt.Fprintln(os.Stderr, "uvmsweep: -resume requires -journal")
		return govern.ExitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	fps, err := parseFloats(*footprints)
	if err != nil {
		return fail(err)
	}
	batches, err := parseInts(*batch)
	if err != nil {
		return fail(err)
	}
	vablocks, err := parseInts(*vablock)
	if err != nil {
		return fail(err)
	}
	vbBytes := make([]int64, len(vablocks))
	for i, vb := range vablocks {
		vbBytes[i] = int64(vb) << 10
	}

	s := &sweep.Spec{
		Workload:       *workload,
		GPUMemoryBytes: *gpuMB << 20,
		Seed:           *seed,
		Footprints:     fps,
		Prefetch:       splitList(*prefetch),
		Replay:         splitList(*replay),
		Evict:          splitList(*evictPol),
		Batch:          batches,
		VABlock:        vbBytes,
		Jobs:           *jobs,
		Budget:         gf.Budget(),
		Retries:        *retries,
		Journal:        *journalF,
		Resume:         *resume,
	}
	if *traceOut != "" || *metricsOut != "" {
		s.Obs = obs.NewCollector()
		s.Lifecycle = true
	}
	// Fail fast: reject any bad name or bound before a single cell runs.
	if err := s.Validate(); err != nil {
		return fail(err)
	}

	ctx, stop := gf.Context()
	defer stop()
	res, runErr := s.RunContext(ctx)
	// Flush everything that finished even when the sweep was stopped: the
	// journal already holds the cell outcomes, and partial artifacts are
	// what -resume builds on.
	if res != nil {
		if err := flush(res, s, *csvOut, *traceOut, *metricsOut); err != nil {
			return fail(err)
		}
	}
	if runErr != nil {
		st := govern.StatusOf(runErr)
		fmt.Fprintf(os.Stderr, "uvmsweep: %s: %v\n", st.State, runErr)
		if st.State == govern.StateCancelled && *journalF != "" {
			fmt.Fprintf(os.Stderr, "uvmsweep: resume with: -resume -journal %s\n", *journalF)
		}
		return govern.ExitCode(st.State)
	}
	counts := res.Counts()
	if n := counts[govern.StateDeadline] + counts[govern.StateLivelock]; n > 0 {
		fmt.Fprintf(os.Stderr, "uvmsweep: %d cells stopped by budget (deadline=%d livelock=%d)\n",
			n, counts[govern.StateDeadline], counts[govern.StateLivelock])
		return govern.ExitBudget
	}
	return govern.ExitOK
}

// flush writes the result table to stdout and the observability exports
// to their files atomically, restricting exports to completed cells so
// partial captures from stopped or retried attempts never pollute them.
func flush(res *sweep.Result, s *sweep.Spec, csvOut bool, traceOut, metricsOut string) error {
	var err error
	if csvOut {
		err = res.Table.WriteCSV(os.Stdout)
	} else {
		err = res.Table.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	if res.Reused > 0 || res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "# %d cells reused from journal, %d skipped\n", res.Reused, res.Skipped)
	}
	if s.Obs == nil {
		return nil
	}
	done := s.Obs.Filter(func(c *obs.Cell) bool {
		return c.Status() == string(govern.StateCompleted)
	})
	if traceOut != "" {
		if err := atomicio.WriteFile(traceOut, done.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s (%d cells)\n", traceOut, len(done.Cells()))
	}
	if metricsOut != "" {
		if err := atomicio.WriteFile(metricsOut, done.WriteMetricsCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", metricsOut)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "uvmsweep:", err)
	return 1
}
