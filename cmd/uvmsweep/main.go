// Command uvmsweep runs a generic parameter sweep: one workload crossed
// with any combination of prefetch policy, density threshold, replay
// policy, eviction policy, batch size, VABlock granularity, and footprint
// fraction, printing one row per configuration.
//
// Every flag combination is validated before anything runs, so a typo in
// the last policy name fails instantly instead of after earlier configs
// have simulated. Independent configurations fan out across -jobs worker
// goroutines (default: all CPUs); the output is byte-identical at every
// -jobs value, and -jobs 1 is the strictly serial path.
//
// Usage:
//
//	uvmsweep -workload random -footprints 0.5,1.25 -prefetch none,density,adaptive
//	uvmsweep -workload sgemm -footprints 0.9,1.2,1.5 -evict lru,access-aware
//	uvmsweep -workload stream -batch 64,256,1024 -replay batch,batchflush -jobs 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/sweep"
)

func main() {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		footprints = flag.String("footprints", "0.5", "comma-separated data footprints as fractions of GPU memory")
		prefetch   = flag.String("prefetch", "density", "comma-separated prefetch policies")
		replay     = flag.String("replay", "batchflush", "comma-separated replay policies")
		evictPol   = flag.String("evict", "lru", "comma-separated eviction policies")
		batch      = flag.String("batch", "256", "comma-separated fault batch sizes")
		vablock    = flag.String("vablock", "2048", "comma-separated VABlock sizes in KiB")
		jobs       = flag.Int("jobs", 0, "worker goroutines fanning configs out (0 = all CPUs, 1 = serial)")
		csvOut     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	fps, err := parseFloats(*footprints)
	if err != nil {
		fatal(err)
	}
	batches, err := parseInts(*batch)
	if err != nil {
		fatal(err)
	}
	vablocks, err := parseInts(*vablock)
	if err != nil {
		fatal(err)
	}
	vbBytes := make([]int64, len(vablocks))
	for i, vb := range vablocks {
		vbBytes[i] = int64(vb) << 10
	}

	s := &sweep.Spec{
		Workload:       *workload,
		GPUMemoryBytes: *gpuMB << 20,
		Seed:           *seed,
		Footprints:     fps,
		Prefetch:       splitList(*prefetch),
		Replay:         splitList(*replay),
		Evict:          splitList(*evictPol),
		Batch:          batches,
		VABlock:        vbBytes,
		Jobs:           *jobs,
	}
	// Fail fast: reject any bad name or bound before a single cell runs.
	if err := s.Validate(); err != nil {
		fatal(err)
	}
	t, err := s.Run()
	if err != nil {
		fatal(err)
	}
	if *csvOut {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvmsweep:", err)
	os.Exit(1)
}
