// Command uvmsweep runs a generic parameter sweep: one workload crossed
// with any combination of prefetch policy, density threshold, replay
// policy, eviction policy, batch size, VABlock granularity, and footprint
// fraction, printing one row per configuration.
//
// Every flag combination is validated before anything runs, so a typo in
// the last policy name fails instantly instead of after earlier configs
// have simulated. Independent configurations fan out across -jobs worker
// goroutines (default: all CPUs); the output is byte-identical at every
// -jobs value, and -jobs 1 is the strictly serial path.
//
// Distributed mode (-listen / -workers) turns the process into the
// sweep fabric's coordinator instead of running cells in-process: cells
// are leased to stateless uvmworker processes with heartbeat-renewed
// deadlines, dead workers' cells are reassigned with capped backoff, a
// per-cell retry budget quarantines poison cells, completions are
// deduplicated by confighash, and the merged table is byte-identical to
// a single-process run. With -journal the coordinator itself is
// crash-tolerant: -resume replays completed cells from disk.
//
// Usage:
//
//	uvmsweep -workload random -footprints 0.5,1.25 -prefetch none,density,adaptive
//	uvmsweep -workload sgemm -footprints 0.9,1.2,1.5 -evict lru,access-aware
//	uvmsweep -workload stream -batch 64,256,1024 -replay batch,batchflush -jobs 8
//	uvmsweep -workload random -footprints 0.5,1.0 -workers 3          # spawn 3 local workers
//	uvmsweep -workload random -footprints 0.5,1.0 -listen :9933       # external workers attach
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"uvmsim/internal/atomicio"
	"uvmsim/internal/cachetier"
	"uvmsim/internal/dist"
	"uvmsim/internal/govern"
	"uvmsim/internal/obs"
	"uvmsim/internal/prof"
	"uvmsim/internal/sweep"
	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		footprints = flag.String("footprints", "0.5", "comma-separated data footprints as fractions of GPU memory")
		prefetch   = flag.String("prefetch", "density", "comma-separated prefetch policies")
		replay     = flag.String("replay", "batchflush", "comma-separated replay policies")
		evictPol   = flag.String("evict", "lru", "comma-separated eviction policies")
		batch      = flag.String("batch", "256", "comma-separated fault batch sizes")
		vablock    = flag.String("vablock", "2048", "comma-separated VABlock sizes in KiB")
		gpus       = flag.String("gpus", "1", "comma-separated GPU counts (multi-GPU cells add gpus=/migration= to their labels)")
		migration  = flag.String("migration", "first-touch", "comma-separated multi-GPU migration policies (first-touch, access-counter); ignored at 1 GPU")
		jobs       = flag.Int("jobs", 0, "worker goroutines fanning configs out (0 = all CPUs, 1 = serial)")
		csvOut     = flag.Bool("csv", false, "emit CSV")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON with one process per sweep cell (load in Perfetto)")
		metricsOut = flag.String("metrics", "", "write every cell's metrics registry as CSV to this file")
		journalF   = flag.String("journal", "", "append every cell's outcome to this crash-safe JSONL journal")
		resume     = flag.Bool("resume", false, "replay -journal before running: completed cells are skipped, unfinished cells run")
		retries    = flag.Int("retries", 0, "retries per transiently-failed cell (bounded exponential backoff)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")

		listen      = flag.String("listen", "", "coordinator mode: serve sweep cells to uvmworker processes at this address instead of running in-process")
		workers     = flag.Int("workers", 0, "coordinator mode: spawn this many local uvmworker processes (implies -listen 127.0.0.1:0 when unset)")
		workerBin   = flag.String("worker-bin", "", "uvmworker binary for -workers (default: uvmworker next to this executable)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "coordinator mode: lease deadline between worker heartbeats")
		cellRetries = flag.Int("cell-retries", 3, "coordinator mode: lease re-grants per cell (expiry or failure) before quarantine")
		linger      = flag.Duration("linger", 2*time.Second, "coordinator mode: how long to keep answering done to workers after the sweep settles")
		cacheTier   = flag.String("cache-tier", "", "coordinator mode: comma-separated uvmserved node URLs; completed rows are write-through filled to their owning node")
	)
	var gf govern.Flags
	gf.Register()
	var tf telemetry.Flags
	tf.Register()
	flag.Parse()

	if *resume && *journalF == "" {
		fmt.Fprintln(os.Stderr, "uvmsweep: -resume requires -journal")
		return govern.ExitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	fps, err := parseFloats(*footprints)
	if err != nil {
		return fail(err)
	}
	batches, err := parseInts(*batch)
	if err != nil {
		return fail(err)
	}
	vablocks, err := parseInts(*vablock)
	if err != nil {
		return fail(err)
	}
	vbBytes := make([]int64, len(vablocks))
	for i, vb := range vablocks {
		vbBytes[i] = int64(vb) << 10
	}
	gpuCounts, err := parseInts(*gpus)
	if err != nil {
		return fail(err)
	}

	s := &sweep.Spec{
		Workload:       *workload,
		GPUMemoryBytes: *gpuMB << 20,
		Seed:           *seed,
		Footprints:     fps,
		Prefetch:       splitList(*prefetch),
		Replay:         splitList(*replay),
		Evict:          splitList(*evictPol),
		Batch:          batches,
		VABlock:        vbBytes,
		GPUs:           gpuCounts,
		Migration:      splitList(*migration),
		Jobs:           *jobs,
		Budget:         gf.Budget(),
		Retries:        *retries,
		Journal:        *journalF,
		Resume:         *resume,
	}
	distMode := *listen != "" || *workers > 0
	if *traceOut != "" || *metricsOut != "" {
		if distMode {
			return fail(fmt.Errorf("-trace/-metrics are per-cell observability exports and need in-process cells; they are not supported in coordinator mode"))
		}
		s.Obs = obs.NewCollector()
		s.Lifecycle = true
	}
	// Fail fast: reject any bad name or bound before a single cell runs.
	if err := s.Validate(); err != nil {
		return fail(err)
	}

	flight := tf.Flight()
	lg := tf.Logger("uvmsweep", flight)
	defer telemetry.ArmGovern(flight, tf.FlightDir, lg)()

	ctx, stop := gf.Context()
	defer stop()

	if distMode {
		return runDist(ctx, s, distOptions{
			listen: *listen, workers: *workers, workerBin: *workerBin,
			leaseTTL: *leaseTTL, cellRetries: *cellRetries, linger: *linger,
			journal: *journalF, resume: *resume, csv: *csvOut,
			cacheTier: *cacheTier,
			log:       lg, flight: flight, flightDir: tf.FlightDir,
		})
	}

	res, runErr := s.RunContext(ctx)
	// Flush everything that finished even when the sweep was stopped: the
	// journal already holds the cell outcomes, and partial artifacts are
	// what -resume builds on.
	if res != nil {
		if err := flush(res, s, *csvOut, *traceOut, *metricsOut); err != nil {
			return fail(err)
		}
	}
	if runErr != nil {
		st := govern.StatusOf(runErr)
		fmt.Fprintf(os.Stderr, "uvmsweep: %s: %v\n", st.State, runErr)
		if st.State == govern.StateCancelled && *journalF != "" {
			fmt.Fprintf(os.Stderr, "uvmsweep: resume with: -resume -journal %s\n", *journalF)
		}
		return govern.ExitCode(st.State)
	}
	counts := res.Counts()
	if n := counts[govern.StateDeadline] + counts[govern.StateLivelock]; n > 0 {
		fmt.Fprintf(os.Stderr, "uvmsweep: %d cells stopped by budget (deadline=%d livelock=%d)\n",
			n, counts[govern.StateDeadline], counts[govern.StateLivelock])
		return govern.ExitBudget
	}
	return govern.ExitOK
}

// flush writes the result table to stdout and the observability exports
// to their files atomically, restricting exports to completed cells so
// partial captures from stopped or retried attempts never pollute them.
func flush(res *sweep.Result, s *sweep.Spec, csvOut bool, traceOut, metricsOut string) error {
	var err error
	if csvOut {
		err = res.Table.WriteCSV(os.Stdout)
	} else {
		err = res.Table.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	if res.Reused > 0 || res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "# %d cells reused from journal, %d skipped\n", res.Reused, res.Skipped)
	}
	if s.Obs == nil {
		return nil
	}
	done := s.Obs.Filter(func(c *obs.Cell) bool {
		return c.Status() == string(govern.StateCompleted)
	})
	if traceOut != "" {
		if err := atomicio.WriteFile(traceOut, done.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s (%d cells)\n", traceOut, len(done.Cells()))
	}
	if metricsOut != "" {
		if err := atomicio.WriteFile(metricsOut, done.WriteMetricsCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", metricsOut)
	}
	return nil
}

// distOptions carries the coordinator-mode knobs.
type distOptions struct {
	listen, workerBin, journal string
	workers, cellRetries       int
	leaseTTL, linger           time.Duration
	resume, csv                bool
	cacheTier                  string
	log                        *slog.Logger
	flight                     *telemetry.Flight
	flightDir                  string
}

// runDist runs the sweep as the distributed fabric's coordinator:
// serve leases to workers, wait for every cell to settle, then print
// the merged table — byte-identical to the in-process path.
func runDist(ctx context.Context, s *sweep.Spec, o distOptions) int {
	cfg := dist.CoordinatorConfig{
		LeaseTTL:    o.leaseTTL,
		RetryBudget: o.cellRetries,
		Journal:     o.journal,
		Resume:      o.resume,
		Log:         o.log,
		Flight:      o.flight,
		FlightDir:   o.flightDir,
	}
	var tier *cachetier.Tier
	if o.cacheTier != "" {
		tier = cachetier.New(cachetier.Config{
			Nodes:     strings.Split(o.cacheTier, ","),
			Logger:    o.log,
			Flight:    o.flight,
			FlightDir: o.flightDir,
		})
		// Completed rows write through to their owning node, and the
		// tier's breaker/fill counters ride the coordinator's /metrics.
		cfg.CacheFill = tier.Fill
		cfg.ExtraMetrics = tier.Samples
		// The prober needs its own cancellation: the signal context only
		// cancels on SIGINT/SIGTERM, and a normal exit must not wait on it.
		pctx, pcancel := context.WithCancel(ctx)
		tier.StartProber(pctx)
		defer func() { pcancel(); tier.StopProber() }()
	}
	co, err := dist.NewCoordinator(s, cfg)
	if err != nil {
		return fail(err)
	}
	defer co.Close()

	addr := o.listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "uvmsweep: coordinator server: %v\n", serr)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "# coordinator listening on %s (lease-ttl %s, cell-retries %d)\n",
		url, o.leaseTTL, o.cellRetries)
	if o.log != nil {
		o.log.Info("coordinator listening",
			slog.String("url", url),
			slog.String(telemetry.KeyTraceID, co.TraceID()))
	}

	procs, err := spawnWorkers(ctx, o, url)
	if err != nil {
		srv.Close()
		return fail(err)
	}

	res, runErr := co.Wait(ctx)
	// Keep answering done briefly so attached workers exit clean instead
	// of seeing the listener vanish mid-poll.
	if o.linger > 0 {
		t := time.NewTimer(o.linger)
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	}
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if serr := srv.Shutdown(shctx); serr != nil {
		srv.Close()
	}
	cancel()
	reapWorkers(procs)

	fmt.Fprintf(os.Stderr, "# dist: %s\n", co.Summary())
	if res != nil {
		if err := flush(res, s, o.csv, "", ""); err != nil {
			return fail(err)
		}
	}
	if runErr != nil {
		st := govern.StatusOf(runErr)
		fmt.Fprintf(os.Stderr, "uvmsweep: %s: %v\n", st.State, runErr)
		if st.State == govern.StateCancelled && o.journal != "" {
			fmt.Fprintf(os.Stderr, "uvmsweep: resume with: -resume -journal %s\n", o.journal)
		}
		return govern.ExitCode(st.State)
	}
	counts := res.Counts()
	if q := counts[govern.StateQuarantined]; q > 0 {
		fmt.Fprintf(os.Stderr, "uvmsweep: %d cells quarantined (poison cells; retry budget %d spent):\n", q, o.cellRetries)
		for _, cs := range res.Statuses {
			if cs.State == govern.StateQuarantined {
				fmt.Fprintf(os.Stderr, "  %s: %s\n", cs.Label, cs.Err)
			}
		}
		return govern.ExitFailure
	}
	if n := counts[govern.StateDeadline] + counts[govern.StateLivelock]; n > 0 {
		fmt.Fprintf(os.Stderr, "uvmsweep: %d cells stopped by budget (deadline=%d livelock=%d)\n",
			n, counts[govern.StateDeadline], counts[govern.StateLivelock])
		return govern.ExitBudget
	}
	return govern.ExitOK
}

// spawnWorkers starts o.workers local uvmworker processes attached to
// the coordinator. They die with ctx (SIGINT reaches them through the
// CommandContext kill) and exit on their own when the sweep settles.
func spawnWorkers(ctx context.Context, o distOptions, url string) ([]*exec.Cmd, error) {
	if o.workers <= 0 {
		return nil, nil
	}
	bin := o.workerBin
	if bin == "" {
		if self, err := os.Executable(); err == nil {
			cand := filepath.Join(filepath.Dir(self), "uvmworker")
			if _, serr := os.Stat(cand); serr == nil {
				bin = cand
			}
		}
		if bin == "" {
			if p, err := exec.LookPath("uvmworker"); err == nil {
				bin = p
			}
		}
		if bin == "" {
			return nil, fmt.Errorf("uvmworker binary not found next to this executable or in PATH; `go build ./cmd/uvmworker` or pass -worker-bin")
		}
	}
	var procs []*exec.Cmd
	for i := 0; i < o.workers; i++ {
		cmd := exec.CommandContext(ctx, bin, "-coordinator", url, "-name", fmt.Sprintf("local-%d", i))
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				p.Process.Kill()
				p.Wait()
			}
			return nil, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// reapWorkers waits briefly for spawned workers; stragglers are killed.
// A worker's exit code is advisory — the lease fabric already absorbed
// any worker failure into the sweep result.
func reapWorkers(procs []*exec.Cmd) {
	for _, p := range procs {
		done := make(chan error, 1)
		go func(c *exec.Cmd) { done <- c.Wait() }(p)
		select {
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "# worker exited: %v\n", err)
			}
		case <-time.After(5 * time.Second):
			p.Process.Kill()
			<-done
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("uvmsweep: bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "uvmsweep:", err)
	return 1
}
