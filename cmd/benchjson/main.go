// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON document, and compares two such documents as a
// regression gate (scripts/bench_check.sh).
//
// Parse mode (default) reads benchmark output on stdin:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -o results/bench.json
//
// Compare mode gates a current document against a committed baseline:
//
//	benchjson -compare baseline.json current.json \
//	    -alloc-guard 'BinBatch|Plan' -alloc-tol 10 \
//	    -time-guard 'BinBatch|Plan' -time-tol 10
//
// Allocation counts are deterministic, so the alloc gate is the strict
// contract; time/op is a machine-dependent backstop with its own
// tolerance. A guarded benchmark missing from the current document fails
// the gate (deleting a benchmark must not silently drop its guard).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark measurement.
type Bench struct {
	Name        string  `json:"name"` // pkg-qualified: uvmsim/internal/tree.BenchmarkPlan
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the on-disk document.
type Doc struct {
	Generated string  `json:"generated"`
	Go        string  `json:"go"`
	Benches   []Bench `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("o", "", "output file for parse mode (default stdout)")
		compare    = flag.Bool("compare", false, "compare two documents: benchjson -compare base.json cur.json")
		allocTol   = flag.Float64("alloc-tol", 10, "allowed allocs/op regression in percent")
		timeTol    = flag.Float64("time-tol", 10, "allowed ns/op regression in percent")
		allocGuard = flag.String("alloc-guard", ".", "regexp of benchmarks whose allocs/op are gated")
		timeGuard  = flag.String("time-guard", ".", "regexp of benchmarks whose ns/op are gated")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fatalf("compare mode needs exactly two files, got %d", flag.NArg())
		}
		failures := compareDocs(load(flag.Arg(0)), load(flag.Arg(1)),
			regexp.MustCompile(*allocGuard), regexp.MustCompile(*timeGuard),
			*allocTol, *timeTol, os.Stdout)
		if failures > 0 {
			fatalf("%d benchmark regression(s) beyond tolerance", failures)
		}
		return
	}
	doc := Doc{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Benches:   parse(os.Stdin),
	}
	if len(doc.Benches) == 0 {
		fatalf("no benchmark lines found on stdin")
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benches), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parse extracts benchmark result lines, tracking the `pkg:` header go
// test prints before each package's benchmarks. Repeated measurements of
// one benchmark (-count=N) collapse to a single entry: minimum ns/op
// (the least-noise estimate of the code's true cost) and maximum
// allocs/op and B/op (the conservative bound for the alloc gate).
func parse(r *os.File) []Bench {
	var out []Bench
	index := make(map[string]int)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Benchmark lines: name, N, ns/op value+unit pairs.
		if len(f) < 3 {
			continue
		}
		b := Bench{Name: f[0]}
		if pkg != "" {
			b.Name = pkg + "." + f[0]
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b.Iterations = n
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			val, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				b.NsPerOp, err = strconv.ParseFloat(val, 64)
				ok = err == nil
			case "B/op":
				b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if !ok {
			continue
		}
		if i, seen := index[b.Name]; seen {
			prev := &out[i]
			prev.Iterations += b.Iterations
			prev.NsPerOp = min(prev.NsPerOp, b.NsPerOp)
			prev.BytesPerOp = max(prev.BytesPerOp, b.BytesPerOp)
			prev.AllocsPerOp = max(prev.AllocsPerOp, b.AllocsPerOp)
			continue
		}
		index[b.Name] = len(out)
		out = append(out, b)
	}
	return out
}

func load(path string) Doc {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var d Doc
	if err := json.Unmarshal(buf, &d); err != nil {
		fatalf("%s: %v", path, err)
	}
	return d
}

// compareDocs prints a benchstat-style table and returns the number of
// gated regressions.
func compareDocs(base, cur Doc, allocGuard, timeGuard *regexp.Regexp, allocTol, timeTol float64, w *os.File) int {
	curByName := make(map[string]Bench, len(cur.Benches))
	for _, b := range cur.Benches {
		curByName[b.Name] = b
	}
	failures := 0
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, b := range base.Benches {
		gateAlloc := allocGuard.MatchString(b.Name)
		gateTime := timeGuard.MatchString(b.Name)
		c, ok := curByName[b.Name]
		if !ok {
			if gateAlloc || gateTime {
				fmt.Fprintf(w, "%-60s guarded benchmark missing from current run: FAIL\n", b.Name)
				failures++
			}
			continue
		}
		failures += gauge(w, b.Name+" [allocs/op]", float64(b.AllocsPerOp), float64(c.AllocsPerOp), allocTol, gateAlloc)
		failures += gauge(w, b.Name+" [ns/op]", b.NsPerOp, c.NsPerOp, timeTol, gateTime)
	}
	return failures
}

// gauge prints one metric row and returns 1 when a gated regression
// exceeds tol percent.
func gauge(w *os.File, label string, old, cur float64, tol float64, gated bool) int {
	delta := 0.0
	switch {
	case old > 0:
		delta = (cur - old) / old * 100
	case cur > 0:
		delta = 100 // from zero to nonzero is always a full regression
	}
	mark := ""
	fail := 0
	if gated && delta > tol {
		mark = "  FAIL (>" + strconv.FormatFloat(tol, 'f', -1, 64) + "%)"
		fail = 1
	} else if !gated {
		mark = "  (ungated)"
	}
	fmt.Fprintf(w, "%-60s %14.1f %14.1f %+7.1f%%%s\n", label, old, cur, delta, mark)
	return fail
}
