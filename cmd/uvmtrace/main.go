// Command uvmtrace runs one workload under full instrumentation — span
// tracing, the metrics registry, and per-fault lifecycle tracking — once
// per replay policy, prints a timeline summary with fault-latency
// percentiles, and exports a Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing (one process per policy, one thread per
// driver/DMA/GPU track).
//
// Every run cross-checks the span stream against the driver's phase
// breakdown: the per-phase sums of the emitted spans must equal
// stats.Breakdown exactly, or the command exits nonzero.
//
// Usage:
//
//	uvmtrace -workload regular -footprint 0.5 -o trace.json
//	uvmtrace -workload random -policies batchflush,once -footprint 1.2
//	uvmtrace -workload sgemm -metrics metrics.csv -span-csv spans.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"uvmsim/internal/atomicio"
	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/govern"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/prof"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload   = flag.String("workload", "regular", "workload name")
		gpuMB      = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		footprint  = flag.Float64("footprint", 0.5, "data footprint as a fraction of GPU memory")
		prefetch   = flag.String("prefetch", "none", "prefetch policy")
		policiesF  = flag.String("policies", "block,batch,batchflush,once", "comma-separated replay policies, one traced run each")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		gpus       = flag.Int("gpus", 1, "device count; each GPU gets its own track lane in the exported trace")
		migration  = flag.String("migration", "first-touch", "multi-GPU migration policy (first-touch, access-counter); ignored at 1 GPU")
		traceOut   = flag.String("o", "", "write the combined Chrome trace-event JSON to this file")
		spanCSV    = flag.String("span-csv", "", "write every span as flat CSV to this file")
		metricsOut = flag.String("metrics", "", "write every run's metrics registry as CSV to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")
	)
	var gf govern.Flags
	gf.Register()
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	var policies []driver.ReplayPolicy
	for _, s := range strings.Split(*policiesF, ",") {
		p, err := driver.ParseReplayPolicy(strings.TrimSpace(s))
		if err != nil {
			return fail(err)
		}
		policies = append(policies, p)
	}
	mpol, err := multigpu.ParsePolicy(*migration)
	if err != nil {
		return fail(err)
	}

	ctx, stop := gf.Context()
	defer stop()
	gov := governance{cancel: govern.WatchContext(ctx), budget: gf.Budget()}

	collector := obs.NewCollector()
	for _, pol := range policies {
		if err := ctx.Err(); err != nil {
			return failGoverned(err)
		}
		if err := traceOne(collector, gov, *workload, *gpuMB<<20, *footprint, *prefetch, pol, *seed, *gpus, mpol); err != nil {
			return failGoverned(err)
		}
	}

	if *traceOut != "" {
		if err := atomicio.WriteFile(*traceOut, collector.WriteChromeTrace); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s (%d cells; load in Perfetto or chrome://tracing)\n", *traceOut, len(collector.Cells()))
	}
	if *spanCSV != "" {
		if err := atomicio.WriteFile(*spanCSV, collector.WriteSpanCSV); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", *spanCSV)
	}
	if *metricsOut != "" {
		if err := atomicio.WriteFile(*metricsOut, collector.WriteMetricsCSV); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	return 0
}

// governance bundles the cancellation flag and run budget stamped onto
// every traced system.
type governance struct {
	cancel *sim.Cancel
	budget sim.Budget
}

// traceOne runs the workload once under pol with full instrumentation,
// prints the timeline and latency summary, and verifies the span stream
// against the driver's phase breakdown.
func traceOne(collector *obs.Collector, gov governance, workload string, gpuBytes int64, footprint float64, prefetch string, pol driver.ReplayPolicy, seed uint64, gpus int, mpol multigpu.Policy) error {
	label := fmt.Sprintf("workload=%s policy=%s footprint=%g seed=%d", workload, pol, footprint, seed)
	if gpus > 1 {
		label += fmt.Sprintf(" gpus=%d migration=%s", gpus, mpol)
	}
	cfg := core.DefaultConfig(gpuBytes)
	cfg.Seed = seed
	cfg.PrefetchPolicy = prefetch
	cfg.Driver.Policy = pol
	cfg.Cancel = gov.cancel
	cfg.Budget = gov.budget
	if gpus > 1 {
		cfg.GPUs = gpus
		cfg.Migration = mpol
	}
	cfg.Obs = obs.Options{Collector: collector, Label: label, Lifecycle: true}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	builder, err := workloads.Get(workload)
	if err != nil {
		return err
	}
	p := workloads.DefaultParams()
	p.Seed = seed + 100
	k, err := builder(sys, int64(footprint*float64(gpuBytes)), p)
	if err != nil {
		return err
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		return err
	}

	// One capture cell per device: the Chrome trace export gives each
	// device its own process lane, and remote-map spans land on the
	// device that issued the remote access. The reconciliation below runs
	// against the union, since RunResult.Breakdown sums every device.
	cells := sys.ObsCells()
	var spans []obs.Span
	for _, c := range cells {
		spans = append(spans, c.Sink.Spans()...)
	}
	fmt.Printf("%s\n  total=%v faults=%d spans=%d\n", label, res.TotalTime, res.Faults, len(spans))
	if len(cells) > 1 {
		for d, c := range cells {
			fmt.Printf("  [gpu%d lane]\n", d)
			printTimeline(c.Sink.Spans())
		}
	} else {
		printTimeline(spans)
	}
	if err := reconcile(spans, res.Breakdown); err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	fmt.Printf("  span/breakdown reconciliation: ok (driver total %v)\n", res.Breakdown.Total())

	life := sys.Lifecycle()
	if err := life.Final(); err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	born, _, _, replayed, stale, flushed := life.Counts()
	fmt.Printf("  fault lifecycle: born=%d replayed=%d stale=%d flushed=%d\n", born, replayed, stale, flushed)
	for _, l := range []struct {
		name string
		h    *stats.Histogram
	}{
		{"birth_to_fetch", life.BirthToFetch()},
		{"fetch_to_service", life.FetchToService()},
		{"service_to_replay", life.ServiceToReplay()},
		{"birth_to_replay", life.BirthToReplay()},
	} {
		fmt.Printf("  %s\n", obs.LatencyLine(l.name, l.h))
	}
	fmt.Println()
	return nil
}

// printTimeline prints per-kind span counts and summed durations in kind
// declaration order (driver, then DMA, then GPU tracks).
func printTimeline(spans []obs.Span) {
	type agg struct {
		count int
		total sim.Duration
	}
	byKind := map[obs.Kind]agg{}
	for _, s := range spans {
		a := byKind[s.Kind]
		a.count++
		a.total += s.Duration()
		byKind[s.Kind] = a
	}
	kinds := make([]obs.Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		a := byKind[k]
		fmt.Printf("  %-8s %-14s n=%-8d total=%v\n", obs.TrackOf(k), k, a.count, a.total)
	}
}

// reconcile asserts that the driver-phase sums of the span stream equal
// the run's breakdown exactly, phase by phase.
func reconcile(spans []obs.Span, want stats.Breakdown) error {
	got := obs.PhaseTotals(spans)
	for _, p := range stats.Phases() {
		if got.Get(p) != want.Get(p) {
			return fmt.Errorf("span total for %s = %v, breakdown says %v", p, got.Get(p), want.Get(p))
		}
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "uvmtrace:", err)
	return 1
}

// failGoverned classifies err through the governance taxonomy so a
// SIGINT exits 130 and a tripped budget exits 3 instead of a generic 1.
func failGoverned(err error) int {
	st := govern.StatusOf(err)
	fmt.Fprintf(os.Stderr, "uvmtrace: %s: %v\n", st.State, err)
	return govern.ExitCode(st.State)
}
