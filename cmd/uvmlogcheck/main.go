// Command uvmlogcheck validates fleet telemetry artifacts against the
// shared schema (internal/telemetry), so check scripts can assert
// "every log line this run produced is well-formed and traceable"
// instead of grepping for shapes.
//
// Two modes:
//
//	uvmlogcheck [file...]          validate JSONL structured logs
//	uvmlogcheck -flight [file...]  validate flight-recorder dumps
//
// With no files, log mode reads stdin. Log mode checks every non-empty
// line: valid JSON object, non-empty time/level/msg, a known level, and
// well-formed trace_id/req_id when present. -require-trace additionally
// demands a trace_id on every line (useful on captures that should be
// fully attributed, like a dist_check worker log). Flight mode parses
// each file as one dump and checks its invariants: a reason, at least
// one event, strictly increasing sequence numbers, non-empty messages.
//
// Exit status: 0 all valid, 1 any violation, 2 usage.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	flight := flag.Bool("flight", false, "validate flight-recorder dump files instead of JSONL logs")
	requireTrace := flag.Bool("require-trace", false, "log mode: every line must carry a trace_id")
	quiet := flag.Bool("q", false, "suppress the per-input ok summary")
	flag.Parse()

	if *flight {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "uvmlogcheck: -flight requires at least one dump file")
			return 2
		}
		bad := 0
		for _, path := range flag.Args() {
			raw, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uvmlogcheck: %v\n", err)
				bad++
				continue
			}
			d, err := telemetry.ValidateDump(raw)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uvmlogcheck: %s: %v\n", path, err)
				bad++
				continue
			}
			if !*quiet {
				fmt.Printf("uvmlogcheck: %s ok (reason %q, %d events, %d dropped)\n",
					path, d.Reason, len(d.Events), d.Dropped)
			}
		}
		if bad > 0 {
			return 1
		}
		return 0
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		return checkLog("stdin", os.Stdin, *requireTrace, *quiet)
	}
	worst := 0
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmlogcheck: %v\n", err)
			worst = 1
			continue
		}
		if rc := checkLog(path, f, *requireTrace, *quiet); rc > worst {
			worst = rc
		}
		f.Close()
	}
	return worst
}

// checkLog validates one JSONL stream line by line, reporting every
// violation with its line number.
func checkLog(name string, r io.Reader, requireTrace, quiet bool) int {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20) // log lines can carry big attrs
	var n, bad int
	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		n++
		if err := telemetry.ValidateLine(raw); err != nil {
			fmt.Fprintf(os.Stderr, "uvmlogcheck: %s:%d: %v\n", name, line, err)
			bad++
			continue
		}
		if requireTrace && !hasTrace(raw) {
			fmt.Fprintf(os.Stderr, "uvmlogcheck: %s:%d: missing required trace_id\n", name, line)
			bad++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "uvmlogcheck: %s: %v\n", name, err)
		return 1
	}
	if bad > 0 {
		return 1
	}
	if !quiet {
		fmt.Printf("uvmlogcheck: %s ok (%d lines)\n", name, n)
	}
	return 0
}

// hasTrace reports whether the (already schema-valid) line carries a
// trace_id. ValidateLine has proven the line parses and that any
// trace_id present is well-formed, so a plain substring probe would be
// tempting — but attr VALUES may contain the literal; re-parse instead.
func hasTrace(raw []byte) bool {
	return telemetry.LineTraceID(raw) != ""
}
