// Command uvmworker is one stateless worker of the distributed sweep
// fabric. It attaches to a coordinator (uvmsweep -listen), leases sweep
// cells one at a time, runs each through the in-process engine while
// heartbeating the lease, and reports the govern verdict back. Workers
// hold no sweep state: killing one at any instant degrades to "its
// leased cell is not yet completed" — the coordinator reassigns the
// cell after the lease expires, and a worker that finishes after its
// lease was reassigned delivers a harmless duplicate (rows are
// deterministic, so the coordinator deduplicates by confighash).
//
// With -serve, the worker consults a uvmserved result cache before
// simulating, so identical cells across the fleet are answered from the
// shared content-addressed tier. The cache is an accelerator only: any
// miss or server trouble falls back to the local engine.
//
// Usage:
//
//	uvmworker -coordinator http://127.0.0.1:9933
//	uvmworker -coordinator http://127.0.0.1:9933 -name w2 -serve http://127.0.0.1:8844
//
// The -inject-dup, -inject-fail, and -slow flags are chaos hooks for
// the dist_check gate: they force a duplicate completion report, a
// misreported failure (exercising the retry path and the worker's
// flight-recorder dump), and widen the held-lease window a kill -9
// must land in.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uvmsim/internal/dist"
	"uvmsim/internal/govern"
	"uvmsim/internal/serve/client"
	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		coord     = flag.String("coordinator", "http://127.0.0.1:9933", "coordinator base URL")
		name      = flag.String("name", "", "worker identity for coordinator audit logs (default host PID)")
		serveURL  = flag.String("serve", "", "optional uvmserved base URL consulted as a shared result cache before simulating")
		retries   = flag.Int("serve-retries", 2, "client retries against -serve (capped backoff honoring Retry-After)")
		quiet      = flag.Bool("quiet", false, "suppress per-lease progress lines")
		injectDup  = flag.Bool("inject-dup", false, "chaos hook: re-send the first completion report (dedup exercise)")
		injectFail = flag.Int("inject-fail", 0, "chaos hook: misreport the first N completed cells as failed (retry + flight-dump exercise)")
		slow       = flag.Duration("slow", 0, "chaos hook: pause after acquiring each lease before running")
	)
	var gf govern.Flags
	gf.Register()
	var tf telemetry.Flags
	tf.Register()
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	flight := tf.Flight()
	lg := tf.Logger("uvmworker", flight).With("worker", *name)
	cfg := dist.WorkerConfig{
		Coordinator:       *coord,
		Name:              *name,
		Flight:            flight,
		FlightDir:         tf.FlightDir,
		InjectDupComplete: *injectDup,
		InjectFail:        *injectFail,
		SlowStart:         *slow,
	}
	if !*quiet {
		cfg.Logger = lg
	}
	if *serveURL != "" {
		sc := client.New(*serveURL, nil).WithRetry(client.RetryPolicy{
			MaxRetries: *retries,
			Base:       200 * time.Millisecond,
		})
		cfg.Runner = dist.ServeRunner(sc, dist.LocalRunner, cfg.Logger)
	}

	// Abnormal run outcomes (budget overruns, recovered panics) feed the
	// flight ring and trigger dumps.
	defer telemetry.ArmGovern(flight, tf.FlightDir, lg)()

	ctx, stop := gf.Context()
	defer stop()
	if err := dist.NewWorker(cfg).Run(ctx); err != nil {
		st := govern.StatusOf(err)
		fmt.Fprintf(os.Stderr, "uvmworker: %s: %v\n", st.State, err)
		return govern.ExitCode(st.State)
	}
	return govern.ExitOK
}
