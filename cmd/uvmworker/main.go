// Command uvmworker is one stateless worker of the distributed sweep
// fabric. It attaches to a coordinator (uvmsweep -listen), leases sweep
// cells one at a time, runs each through the in-process engine while
// heartbeating the lease, and reports the govern verdict back. Workers
// hold no sweep state: killing one at any instant degrades to "its
// leased cell is not yet completed" — the coordinator reassigns the
// cell after the lease expires, and a worker that finishes after its
// lease was reassigned delivers a harmless duplicate (rows are
// deterministic, so the coordinator deduplicates by confighash).
//
// With -serve, the worker consults a replicated uvmserved cache tier
// before simulating: cells route to their owning node by consistent
// hash, each node sits behind a circuit breaker fed by active health
// probes and passive failures, and reads fail over to the next ring
// node when the owner is dark. The tier is an accelerator only: any
// miss, partition, or full-tier outage falls back to the local engine,
// and determinism keeps the output byte-identical either way.
//
// Usage:
//
//	uvmworker -coordinator http://127.0.0.1:9933
//	uvmworker -coordinator http://127.0.0.1:9933 -name w2 \
//	    -serve http://127.0.0.1:8844,http://127.0.0.1:8845,http://127.0.0.1:8846
//
// The -inject-dup, -inject-fail, and -slow flags are chaos hooks for
// the dist_check gate: they force a duplicate completion report, a
// misreported failure (exercising the retry path and the worker's
// flight-recorder dump), and widen the held-lease window a kill -9
// must land in.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uvmsim/internal/cachetier"
	"uvmsim/internal/dist"
	"uvmsim/internal/govern"
	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		coord      = flag.String("coordinator", "http://127.0.0.1:9933", "coordinator base URL")
		name       = flag.String("name", "", "worker identity for coordinator audit logs (default host PID)")
		serveURLs  = flag.String("serve", "", "comma-separated uvmserved node URLs forming the shared cache tier consulted before simulating")
		brkFails   = flag.Int("breaker-failures", cachetier.DefaultFailureThreshold, "consecutive failures that open a cache node's circuit breaker")
		brkOpen    = flag.Duration("breaker-open", cachetier.DefaultOpenTimeout, "cool-off before an open breaker admits a half-open trial")
		probeEvery = flag.Duration("probe-interval", time.Second, "active /healthz probe interval per cache node (negative disables)")
		tierWait   = flag.Duration("tier-timeout", 0, "per-node cache-tier read timeout (0 = tier default); a node slower than this counts as failed")
		quiet      = flag.Bool("quiet", false, "suppress per-lease progress lines")
		injectDup  = flag.Bool("inject-dup", false, "chaos hook: re-send the first completion report (dedup exercise)")
		injectFail = flag.Int("inject-fail", 0, "chaos hook: misreport the first N completed cells as failed (retry + flight-dump exercise)")
		slow       = flag.Duration("slow", 0, "chaos hook: pause after acquiring each lease before running")
	)
	var gf govern.Flags
	gf.Register()
	var tf telemetry.Flags
	tf.Register()
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	flight := tf.Flight()
	lg := tf.Logger("uvmworker", flight).With("worker", *name)
	cfg := dist.WorkerConfig{
		Coordinator:       *coord,
		Name:              *name,
		Flight:            flight,
		FlightDir:         tf.FlightDir,
		InjectDupComplete: *injectDup,
		InjectFail:        *injectFail,
		SlowStart:         *slow,
	}
	if !*quiet {
		cfg.Logger = lg
	}
	var tier *cachetier.Tier
	if *serveURLs != "" {
		tier = cachetier.New(cachetier.Config{
			Nodes:            strings.Split(*serveURLs, ","),
			FailureThreshold: *brkFails,
			OpenTimeout:      *brkOpen,
			ProbeInterval:    *probeEvery,
			LookupTimeout:    *tierWait,
			Logger:           lg,
			Flight:           flight,
			FlightDir:        tf.FlightDir,
		})
		cfg.Runner = tier.Runner(dist.LocalRunner)
	}

	// Abnormal run outcomes (budget overruns, recovered panics) feed the
	// flight ring and trigger dumps.
	defer telemetry.ArmGovern(flight, tf.FlightDir, lg)()

	ctx, stop := gf.Context()
	defer stop()
	if tier != nil {
		// The prober needs its own cancellation: the signal context only
		// cancels on SIGINT/SIGTERM, and a normal exit must not wait on it.
		pctx, pcancel := context.WithCancel(ctx)
		tier.StartProber(pctx)
		defer func() { pcancel(); tier.StopProber() }()
	}
	if err := dist.NewWorker(cfg).Run(ctx); err != nil {
		st := govern.StatusOf(err)
		fmt.Fprintf(os.Stderr, "uvmworker: %s: %v\n", st.State, err)
		return govern.ExitCode(st.State)
	}
	return govern.ExitOK
}
