// Command faulttrace dumps the scatter data behind the paper's access
// pattern figures: Fig. 7 (per-workload fault patterns, prefetching
// disabled) and Fig. 8 (sgemm at 120% of GPU memory with evictions).
//
// Output is CSV with columns seq,time_ns,kind,page_index,block,range —
// plot page_index against row order to reproduce the figures.
//
// Usage:
//
//	faulttrace -workload random > random.csv
//	faulttrace -fig8 > sgemm_oversub.csv
//	faulttrace -workload tealeaf -footprint 0.25 -stride 4
package main

import (
	"flag"
	"fmt"
	"os"

	"uvmsim/internal/exp"
	"uvmsim/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "regular", "workload name (see uvmbench -list / Table I)")
		footprint = flag.Float64("footprint", 0.25, "data footprint as a fraction of GPU memory")
		prefetch  = flag.String("prefetch", "none", "prefetch policy during the trace (fig 7 uses none)")
		fig8      = flag.Bool("fig8", false, "shortcut: sgemm at 120% with the default prefetcher (Fig 8)")
		gpuMB     = flag.Int64("gpu-mem", 96, "scaled GPU framebuffer size in MiB")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		stride    = flag.Int("stride", 1, "downsample fault/prefetch rows by this stride (evictions always kept)")
	)
	flag.Parse()

	sc := exp.Scale{GPUMemoryBytes: *gpuMB << 20, Seed: *seed}
	name, frac, policy := *workload, *footprint, *prefetch
	if *fig8 {
		name, frac, policy = "sgemm", 1.2, ""
	}
	sys, res, err := exp.TraceWorkload(sc, name, frac, policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faulttrace: %v\n", err)
		os.Exit(1)
	}
	comp := trace.NewCompressor(sys.Space())
	fmt.Fprintf(os.Stderr, "# %s footprint=%.0f%% faults=%d evictions=%d time=%v\n",
		name, frac*100, res.Faults, res.Evictions, res.TotalTime)
	for i, b := range comp.RangeBoundaries() {
		fmt.Fprintf(os.Stderr, "# range %d (%s) starts at page_index %d\n",
			i, sys.Space().Ranges()[i].Label, b)
	}
	if err := sys.Trace().WriteCSV(os.Stdout, comp, *stride); err != nil {
		fmt.Fprintf(os.Stderr, "faulttrace: %v\n", err)
		os.Exit(1)
	}
}
