// Command netchaos runs a deterministic fault-injecting reverse proxy
// in front of one HTTP upstream (internal/netchaos). Chaos gates put
// one in front of each uvmserved node and flip faults on mid-sweep:
//
//	netchaos -listen 127.0.0.1:8951 -target http://127.0.0.1:8851 \
//	    -rules 'latency:0.5=50ms,error500:0.1'
//
// Rules are kind[:prob][=value] clauses (latency, blackhole, reset,
// error500, truncate), comma-separated, and live-replaceable via
// POST /__netchaos/rules (body: a rule string, or "none" to clear).
// The same -seed replays the same fault schedule.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"uvmsim/internal/netchaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen = flag.String("listen", "127.0.0.1:0", "address to listen on")
		target = flag.String("target", "", "upstream base URL to proxy (required)")
		seed   = flag.Int64("seed", 1, "PRNG seed for the fault schedule")
		rules  = flag.String("rules", "", "initial fault rules (kind[:prob][=value], comma-separated)")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "netchaos: -target is required")
		return 2
	}
	p, err := netchaos.New(*target, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netchaos: %v\n", err)
		return 2
	}
	rs, err := netchaos.ParseRules(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netchaos: %v\n", err)
		return 2
	}
	p.SetRules(rs)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netchaos: %v\n", err)
		return 1
	}
	// Scripts wait on this line (and read the port from it under :0).
	fmt.Fprintf(os.Stderr, "netchaos: listening on %s -> %s\n", ln.Addr(), *target)
	if err := http.Serve(ln, p); err != nil {
		fmt.Fprintf(os.Stderr, "netchaos: %v\n", err)
		return 1
	}
	return 0
}
