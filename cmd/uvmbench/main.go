// Command uvmbench regenerates the paper's tables and figures as text
// tables or CSV.
//
// Usage:
//
//	uvmbench -list
//	uvmbench -exp fig3
//	uvmbench -exp all -gpu-mem 96 -csv -out results/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uvmsim/internal/exp"
	"uvmsim/internal/stats"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		gpuMB   = flag.Int64("gpu-mem", 96, "scaled GPU framebuffer size in MiB (paper: 12288)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		jobs    = flag.Int("jobs", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial); output is identical at every value")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.Bool("json", false, "emit JSON instead of aligned text")
		outDir  = flag.String("out", "", "write one file per table into this directory instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "uvmbench: -exp <id> required (use -list to enumerate)")
		os.Exit(2)
	}
	sc := exp.Scale{GPUMemoryBytes: *gpuMB << 20, Seed: *seed, Quick: *quick, Jobs: *jobs}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := exp.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			if err := emit(tb, id, i, *csvOut, *jsonOut, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func emit(tb *stats.Table, id string, idx int, csv, asJSON bool, outDir string) error {
	write := func(w io.Writer) error {
		switch {
		case asJSON:
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(tb)
		case csv:
			return tb.WriteCSV(w)
		default:
			return tb.WriteText(w)
		}
	}
	if outDir == "" {
		err := write(os.Stdout)
		if !csv && !asJSON {
			fmt.Println()
		}
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := "txt"
	if csv {
		ext = "csv"
	}
	if asJSON {
		ext = "json"
	}
	name := id
	if idx > 0 {
		name = fmt.Sprintf("%s_%d", id, idx)
	}
	path := filepath.Join(outDir, name+"."+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s (%s)\n", path, strings.TrimSpace(tb.Title))
	return nil
}
