// Command uvmbench regenerates the paper's tables and figures as text
// tables or CSV.
//
// Usage:
//
//	uvmbench -list
//	uvmbench -exp fig3
//	uvmbench -exp all -gpu-mem 96 -csv -out results/
//	uvmbench -exp fig1 -trace fig1.trace.json -metrics fig1.metrics.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uvmsim/internal/atomicio"
	"uvmsim/internal/exp"
	"uvmsim/internal/govern"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/prof"
	"uvmsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expID      = flag.String("exp", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		gpuMB      = flag.Int64("gpu-mem", 96, "scaled GPU framebuffer size in MiB (paper: 12288)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		jobs       = flag.Int("jobs", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial); output is identical at every value")
		gpus       = flag.Int("gpus", 1, "run every cell on this many GPUs (1 = the paper's single-GPU testbed)")
		migration  = flag.String("migration", "first-touch", "multi-GPU migration policy (first-touch, access-counter); ignored at 1 GPU")
		csvOut     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of aligned text")
		outDir     = flag.String("out", "", "write one file per table into this directory instead of stdout")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of every cell to this file (load in Perfetto)")
		metricsOut = flag.String("metrics", "", "write every cell's metrics registry as CSV to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")
	)
	var gf govern.Flags
	gf.Register()
	flag.Parse()

	if *list {
		for _, id := range exp.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "uvmbench: -exp <id> required (use -list to enumerate)")
		return govern.ExitUsage
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uvmbench:", err)
		return 1
	}
	defer stopProf()

	mpol, err := multigpu.ParsePolicy(*migration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uvmbench:", err)
		return govern.ExitUsage
	}
	sc := exp.Scale{GPUMemoryBytes: *gpuMB << 20, Seed: *seed, Quick: *quick, Jobs: *jobs,
		Budget: gf.Budget(), GPUs: *gpus, Migration: mpol}
	if *traceOut != "" || *metricsOut != "" {
		sc.Obs = obs.NewCollector()
		sc.Lifecycle = true
	}

	ctx, stop := gf.Context()
	defer stop()
	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := exp.RunContext(ctx, id, sc)
		if err != nil {
			st := govern.StatusOf(err)
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %s: %v\n", id, st.State, err)
			return govern.ExitCode(st.State)
		}
		for i, tb := range tables {
			if err := emit(tb, id, i, *csvOut, *jsonOut, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", id, err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "# %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if sc.Obs != nil {
		if err := exportObs(sc.Obs, *traceOut, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "uvmbench:", err)
			return 1
		}
	}
	return 0
}

// exportObs writes the collected spans and metrics to their destination
// files (empty path = skip). Writes are atomic: an existing export is
// never left truncated by a crash mid-write.
func exportObs(c *obs.Collector, tracePath, metricsPath string) error {
	if tracePath != "" {
		if err := atomicio.WriteFile(tracePath, c.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s (%d cells)\n", tracePath, len(c.Cells()))
	}
	if metricsPath != "" {
		if err := atomicio.WriteFile(metricsPath, c.WriteMetricsCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", metricsPath)
	}
	return nil
}

func emit(tb *stats.Table, id string, idx int, csv, asJSON bool, outDir string) error {
	write := func(w io.Writer) error {
		switch {
		case asJSON:
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(tb)
		case csv:
			return tb.WriteCSV(w)
		default:
			return tb.WriteText(w)
		}
	}
	if outDir == "" {
		err := write(os.Stdout)
		if !csv && !asJSON {
			fmt.Println()
		}
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := "txt"
	if csv {
		ext = "csv"
	}
	if asJSON {
		ext = "json"
	}
	name := id
	if idx > 0 {
		name = fmt.Sprintf("%s_%d", id, idx)
	}
	path := filepath.Join(outDir, name+"."+ext)
	if err := atomicio.WriteFile(path, write); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# wrote %s (%s)\n", path, strings.TrimSpace(tb.Title))
	return nil
}
