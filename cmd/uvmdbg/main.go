// Command uvmdbg runs a single workload cell with live progress output —
// the diagnostic loupe for pathological configurations (thrash storms,
// livelocks, starvation). With -events it additionally streams warp-level
// execution events.
//
// Usage:
//
//	uvmdbg -workload random -footprint 1.25 -prefetch none
//	uvmdbg -workload sgemm -footprint 1.7 -interval 1s
//	uvmdbg -workload regular -footprint 0.1 -events | head -100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "random", "workload name")
		gpuMB     = flag.Int64("gpu-mem", 96, "GPU framebuffer in MiB")
		footprint = flag.Float64("footprint", 1.25, "data footprint as a fraction of GPU memory")
		prefetch  = flag.String("prefetch", "density", "prefetch policy")
		evictPol  = flag.String("evict", "lru", "eviction policy")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		interval  = flag.Duration("interval", 2*time.Second, "progress print interval (host time)")
		events    = flag.Bool("events", false, "stream warp-level events to stdout (very verbose)")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*gpuMB << 20)
	cfg.Seed = *seed
	cfg.PrefetchPolicy = *prefetch
	cfg.EvictPolicy = *evictPol
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if *events {
		gpusim.SetDebugLog(func(f string, a ...interface{}) { fmt.Printf(f+"\n", a...) })
		defer gpusim.SetDebugLog(nil)
	}
	builder, err := workloads.Get(*workload)
	if err != nil {
		fatal(err)
	}
	p := workloads.DefaultParams()
	p.Seed = *seed + 100
	k, err := builder(sys, int64(*footprint*float64(*gpuMB<<20)), p)
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				gs := sys.GPU().Stats()
				c := sys.Driver().Counters()
				fmt.Fprintf(os.Stderr,
					"sim=%v events=%d resident=%d faults=%d evictions=%d blocked=%d accesses=%d throttled=%d replays=%d\n",
					sys.Engine().Now(), sys.Engine().Executed(), sys.ResidentPages(),
					c.Get("faults_fetched"), c.Get("evictions"),
					sys.GPU().BlockedWarps(), gs.Accesses, gs.FaultsThrottled, gs.Replays)
			}
		}
	}()
	res, err := sys.RunUVM(k)
	close(stop)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done: time=%v faults=%d evictions=%d h2d=%.1fMB d2h=%.1fMB stall=%v (p50=%v p99=%v)\n",
		res.TotalTime, res.Faults, res.Evictions,
		float64(res.BytesH2D)/(1<<20), float64(res.BytesD2H)/(1<<20),
		res.GPU.StallTime,
		sys.GPU().StallHistogram().Quantile(0.5),
		sys.GPU().StallHistogram().Quantile(0.99))
	fmt.Printf("breakdown: %s\n", res.Breakdown.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvmdbg:", err)
	os.Exit(1)
}
