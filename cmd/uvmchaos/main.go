// Command uvmchaos runs seeded fault-injection campaigns against the
// simulated UVM stack and verifies convergence: for every (workload,
// replay policy, seed) cell it executes a clean baseline and a perturbed
// run — dropped/duplicated fault entries, delayed ready flags, overflow
// storms, transient DMA failures, eviction stalls — and asserts both
// service the same page set with zero invariant violations.
//
// Usage:
//
//	uvmchaos
//	uvmchaos -seeds 1,2,3 -workloads regular,random,stream,tealeaf
//	uvmchaos -policies batchflush,once,block -drop 0.05 -dma-fail 0.2
//	uvmchaos -footprint 1.5    # oversubscribed: eviction under chaos
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim/internal/chaos"
	"uvmsim/internal/driver"
	"uvmsim/internal/govern"
	"uvmsim/internal/inject"
	"uvmsim/internal/prof"
	"uvmsim/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gpuMB      = flag.Int64("gpu-mem", 32, "GPU framebuffer in MiB")
		footprint  = flag.Float64("footprint", 0.75, "data footprint as a fraction of GPU memory")
		workloadsF = flag.String("workloads", "regular,random,stream", "comma-separated workload names")
		policiesF  = flag.String("policies", "batchflush,once", "comma-separated replay policies")
		seedsF     = flag.String("seeds", "1,2", "comma-separated seeds")
		drop       = flag.Float64("drop", 0.02, "fault-entry drop probability")
		dup        = flag.Float64("dup", 0.02, "fault-entry duplication probability")
		readyDelay = flag.Float64("ready-delay", 0.05, "ready-flag delay probability")
		storm      = flag.Float64("storm", 0.002, "overflow-storm start probability")
		stormLen   = flag.Int("storm-len", 32, "puts rejected per overflow storm")
		dmaFail    = flag.Float64("dma-fail", 0.05, "transient DMA failure probability")
		evictStall = flag.Float64("evict-stall", 0.1, "eviction stall probability")
		jobs       = flag.Int("jobs", 0, "worker goroutines fanning cells out (0 = all CPUs, 1 = serial)")
		verbose    = flag.Bool("v", false, "print per-run detail columns")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile of the host process to this file on exit")
	)
	var gf govern.Flags
	gf.Register()
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	camp := chaos.Campaign{
		GPUMemoryBytes: *gpuMB << 20,
		FootprintFrac:  *footprint,
		Workloads:      splitList(*workloadsF),
		Jobs:           *jobs,
		Budget:         gf.Budget(),
		Inject: inject.Config{
			Enabled:        true,
			DropProb:       *drop,
			DupProb:        *dup,
			ReadyDelayProb: *readyDelay,
			ReadyDelayMax:  20 * sim.Microsecond,
			StormProb:      *storm,
			StormLen:       *stormLen,
			DMAFailProb:    *dmaFail,
			EvictStallProb: *evictStall,
			EvictStallMax:  50 * sim.Microsecond,
		},
	}
	for _, s := range splitList(*policiesF) {
		p, err := driver.ParseReplayPolicy(s)
		if err != nil {
			return fail(err)
		}
		camp.Policies = append(camp.Policies, p)
	}
	for _, s := range splitList(*seedsF) {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fail(fmt.Errorf("bad seed %q: %w", s, err))
		}
		camp.Seeds = append(camp.Seeds, seed)
	}

	ctx, stop := gf.Context()
	defer stop()
	cells, err := chaos.RunContext(ctx, camp)
	if err != nil {
		st := govern.StatusOf(err)
		fmt.Fprintf(os.Stderr, "uvmchaos: %s: %v\n", st.State, err)
		return govern.ExitCode(st.State)
	}

	fmt.Printf("%-10s %-10s %-5s %8s %9s %9s %7s %7s %7s %7s %6s  %s\n",
		"workload", "policy", "seed", "pages", "base_flt", "inj_flt",
		"drops", "dups", "dma", "forced", "slow", "verdict")
	failed, budgeted := 0, 0
	for _, c := range cells {
		verdict := "ok"
		switch {
		case c.Status == govern.StateDeadline || c.Status == govern.StateLivelock:
			// Stopped by a run budget, not a convergence failure: report
			// the governance verdict instead of a misleading FAIL.
			verdict = string(c.Status)
			budgeted++
		case !c.Converged:
			verdict = "FAIL"
			failed++
		}
		slowdown := "-"
		if c.Baseline.TotalTime > 0 {
			slowdown = fmt.Sprintf("%.2fx", float64(c.Injected.TotalTime)/float64(c.Baseline.TotalTime))
		}
		fmt.Printf("%-10s %-10s %-5d %8d %9d %9d %7d %7d %7d %7d %6s  %s\n",
			c.Workload, c.Policy, c.Seed, c.Pages,
			c.Baseline.FaultsFetched, c.Injected.FaultsFetched,
			c.Injector.Drops, c.Injector.Dups, c.Injector.DMAFailures,
			c.Injected.ForcedReplays, slowdown, verdict)
		if *verbose {
			fmt.Printf("    baseline: time=%v replays=%d evictions=%d checks=%d(%d deep)\n",
				c.Baseline.TotalTime, c.Baseline.Replays, c.Baseline.Evictions,
				c.Baseline.Checks, c.Baseline.DeepChecks)
			fmt.Printf("    injected: time=%v replays=%d evictions=%d retries=%d giveups=%d stalls=%d delays=%d storms=%d checks=%d(%d deep)\n",
				c.Injected.TotalTime, c.Injected.Replays, c.Injected.Evictions,
				c.Injected.DMARetries, c.Injected.DMAGiveups, c.Injector.EvictStalls,
				c.Injector.ReadyDelays, c.Injector.Storms,
				c.Injected.Checks, c.Injected.DeepChecks)
		}
		if c.Err != nil {
			fmt.Printf("    error: %v\n", c.Err)
		}
	}
	fmt.Printf("\n%d/%d cells converged (identical serviced page totals, zero invariant violations)\n",
		len(cells)-failed-budgeted, len(cells))
	if failed > 0 {
		return govern.ExitFailure
	}
	if budgeted > 0 {
		fmt.Fprintf(os.Stderr, "uvmchaos: %d cells stopped by budget\n", budgeted)
		return govern.ExitBudget
	}
	return govern.ExitOK
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "uvmchaos:", err)
	return 1
}
