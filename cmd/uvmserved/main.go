// Command uvmserved serves the UVM simulator over HTTP/JSON:
// simulation-as-a-service with a content-addressed result cache and
// admission control. Because every simulation is a pure function of its
// configuration, identical requests are answered byte-for-byte from a
// bounded LRU cache, concurrent identical requests coalesce into one
// run, and new configurations pass through a bounded admission queue
// that answers 429 (with Retry-After) under overload instead of
// accumulating unbounded work.
//
// Endpoints:
//
//	POST /v1/sim            one cell        POST /v1/sweep   cross product
//	POST /v1/jobs           async sweep     GET  /v1/jobs/{id}[/result]
//	POST /v1/cachefill      write-through   GET  /v1/experiments
//	POST /v1/exp/{id}       paper figure    GET  /metrics    Prometheus
//	GET  /healthz           readiness       GET  /livez      liveness
//
// As a cache-tier node (internal/cachetier), /v1/cachefill accepts
// write-through fills of completed rows from a sweep coordinator, and
// the readiness/liveness split lets the tier's health prober stop
// routing to a draining node that a supervisor should leave alive.
//
// SIGTERM/SIGINT drains gracefully: /healthz flips to 503 (readiness;
// /livez stays 200), in-flight runs finish (up to -drain-grace), async
// jobs settle, and the process exits 0. A second signal forces
// immediate cancellation.
//
// Usage:
//
//	uvmserved -addr :8844
//	uvmserved -addr :8844 -cache 1024 -queue 64 -runs 8 -max-events 50000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uvmsim/internal/serve"
	"uvmsim/internal/sim"
	"uvmsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8844", "listen address")
		cacheN     = flag.Int("cache", 512, "result-cache entries (-1 disables storage, keeps coalescing)")
		queueN     = flag.Int("queue", 64, "admission queue slots (queued+running); full queue answers 429")
		runsN      = flag.Int("runs", 0, "concurrent simulations (0 = all CPUs)")
		sweepJobs  = flag.Int("sweep-jobs", 1, "worker goroutines inside each sweep")
		maxJobs    = flag.Int("max-jobs", 16, "live async jobs")
		maxCells   = flag.Int("max-cells", 4096, "cells per request")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		defTimeout = flag.Duration("default-timeout", 0, "timeout applied to requests that set none (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on per-request timeouts (0 = uncapped)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight runs before force-cancelling")

		readTimeout  = flag.Duration("read-timeout", time.Minute, "max time to read a full request (headers+body); 0 disables")
		writeTimeout = flag.Duration("write-timeout", 15*time.Minute, "max time from end-of-request-read to end-of-response-write; must exceed the longest simulation you serve; 0 disables")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests on one connection; 0 disables")

		simBudget = flag.Duration("sim-budget", 0, "default simulated-time budget per run (0 = unlimited)")
		maxEvents = flag.Uint64("max-events", 0, "default event-count budget per run (0 = unlimited)")
		livelock  = flag.Uint64("livelock-events", 0, "default livelock window in events (0 = disabled)")
		capBudget = flag.Duration("cap-sim-budget", 0, "hard cap on any request's simulated-time budget")
		capEvents = flag.Uint64("cap-max-events", 0, "hard cap on any request's event budget")
	)
	var tf telemetry.Flags
	tf.Register()
	flag.Parse()

	flight := tf.Flight()
	lg := tf.Logger("uvmserved", flight)
	defer telemetry.ArmGovern(flight, tf.FlightDir, lg)()

	srv := serve.New(serve.Config{
		CacheEntries: *cacheN,
		QueueSlots:   *queueN,
		RunSlots:     *runsN,
		SweepJobs:    *sweepJobs,
		MaxJobs:      *maxJobs,
		MaxCells:     *maxCells,
		RetryAfter:   *retryAfter,
		DefaultBudget: sim.Budget{
			SimDeadline:    sim.Time(simBudget.Nanoseconds()),
			MaxEvents:      *maxEvents,
			LivelockWindow: *livelock,
		},
		BudgetCap: sim.Budget{
			SimDeadline: sim.Time(capBudget.Nanoseconds()),
			MaxEvents:   *capEvents,
		},
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Log:            lg,
		Flight:         flight,
		FlightDir:      tf.FlightDir,
	})

	// A stalled or malicious peer must not be able to pin a connection
	// forever: bound every phase of the exchange. WriteTimeout covers
	// the whole handler, so its default is sized for long simulations
	// (and above the typed client's 10-minute overall timeout).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// First signal: graceful drain. Restoring default handling via stop
	// makes a second signal kill the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("uvmserved: listening on %s (cache=%d queue=%d runs=%d)", *addr, *cacheN, *queueN, *runsN)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "uvmserved: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	log.Printf("uvmserved: draining (grace %s)", *drainGrace)
	srv.BeginDrain()
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(grace) // stop accepting, finish in-flight handlers
	drainErr := srv.Drain(grace)           // wait for async jobs; force-cancel at the deadline
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "uvmserved: shutdown: %v\n", shutdownErr)
		return 1
	}
	if drainErr != nil {
		log.Printf("uvmserved: drain grace expired; in-flight runs were cancelled (not cached)")
	}
	log.Printf("uvmserved: drained cleanly")
	return 0
}
