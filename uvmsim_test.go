package uvmsim

import (
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	k, err := BuildWorkload(sys, "regular", 8<<20, DefaultWorkloadParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 || res.TotalTime <= 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestFacadeWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 8 || names[0] != "regular" || names[7] != "cusparse" {
		t.Errorf("names = %v", names)
	}
	sys, err := NewSystem(DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildWorkload(sys, "not-a-workload", 1<<20, DefaultWorkloadParams()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeSGEMM(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	k, err := BuildSGEMM(sys, 256, DefaultWorkloadParams())
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "sgemm" {
		t.Errorf("kernel name = %q", k.Name)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("ids = %v", ids)
	}
	sc := DefaultScale()
	sc.GPUMemoryBytes = 24 << 20
	sc.Quick = true
	tables, err := RunExperiment("fig4", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || !strings.Contains(tables[0].Title, "Fig 4") {
		t.Errorf("tables = %v", tables)
	}
	if _, err := RunExperiment("nope", sc); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeConstants(t *testing.T) {
	if PageSize != 4<<10 || BigPageSize != 64<<10 || VABlockSize != 2<<20 {
		t.Error("layout constants wrong")
	}
	if ReplayBatchFlush.String() != "batchflush" {
		t.Error("replay policy constants wrong")
	}
}

func TestFacadeInjectedRun(t *testing.T) {
	cfg := DefaultConfig(16 << 20)
	cfg.Inject = DefaultInjectConfig(7)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := BuildWorkload(sys, "regular", 8<<20, DefaultWorkloadParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		t.Fatalf("injected run failed: %v", err)
	}
	if res.TotalTime <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestFacadeChaos(t *testing.T) {
	camp := DefaultChaosCampaign()
	camp.GPUMemoryBytes = 8 << 20
	camp.Workloads = camp.Workloads[:1]
	camp.Policies = camp.Policies[:1]
	camp.Seeds = camp.Seeds[:1]
	cells, err := RunChaos(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !cells[0].Converged {
		t.Fatalf("chaos cell = %+v", cells)
	}
}
