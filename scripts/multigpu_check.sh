#!/bin/sh
# Multi-GPU determinism gate.
#
# Leg 1 (K=1 compatibility): the committed pinning tests prove the
# single-GPU degenerate case is byte-identical to the pre-multi-GPU
# simulator — same labels, same confighashes, same table/trace goldens —
# and that the K=4 goldens reproduce at -jobs 1/4/8. Run under -race:
# the shared residency map is exactly where a cross-device data race
# would hide.
#
# Leg 2 (K=4 CLI determinism): a first-touch x access-counter sweep on
# four devices through the real uvmsweep binary must emit byte-identical
# CSV at -jobs 1, 4, and 8, and an explicit "-gpus 1 -migration
# access-counter" run must collapse to the same bytes as the implicit
# single-GPU default (migration policy is meaningless at K=1 and must
# not leak into labels or results).
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# --- leg 1: pinned goldens under the race detector --------------------
go test -race ./internal/sweep -count=1 -run \
    'TestSingleGPULabelAndHashPinned|TestMultiGPULabelFormat|TestPinnedSweepArtifacts|TestPinnedMultiGPUSweepArtifacts|TestMultiGPUPolicySweepDiverges'
echo "multigpu-check: pinned K=1 and K=4 goldens hold under -race"

# --- leg 2: CLI determinism across -jobs ------------------------------
go build -o "$tmp/uvmsweep" ./cmd/uvmsweep

SWEEP="-workload random -footprints 0.5,1.2 -gpus 4 -migration first-touch,access-counter -csv"
"$tmp/uvmsweep" $SWEEP -jobs 1 >"$tmp/j1.csv"
"$tmp/uvmsweep" $SWEEP -jobs 4 >"$tmp/j4.csv"
"$tmp/uvmsweep" $SWEEP -jobs 8 >"$tmp/j8.csv"
if ! diff "$tmp/j1.csv" "$tmp/j4.csv" || ! diff "$tmp/j1.csv" "$tmp/j8.csv"; then
    echo "multigpu-check: K=4 sweep output differs across -jobs" >&2
    exit 1
fi
rows=$(wc -l <"$tmp/j1.csv")
if [ "$rows" -ne 5 ]; then
    echo "multigpu-check: K=4 sweep emitted $rows lines, want 5 (header + 2 footprints x 2 policies)" >&2
    exit 1
fi
echo "multigpu-check: K=4 sweep byte-identical at -jobs 1/4/8"

# --- leg 2b: explicit K=1 collapses to the implicit default -----------
"$tmp/uvmsweep" -workload random -footprints 0.5 -csv >"$tmp/base.csv"
"$tmp/uvmsweep" -workload random -footprints 0.5 -gpus 1 -migration access-counter -csv >"$tmp/one.csv"
if ! diff "$tmp/base.csv" "$tmp/one.csv"; then
    echo "multigpu-check: explicit -gpus 1 output differs from the implicit single-GPU default" >&2
    exit 1
fi
if grep -q "gpus=" "$tmp/base.csv"; then
    echo "multigpu-check: single-GPU labels leak a gpus= token" >&2
    exit 1
fi
echo "multigpu-check: K=1 degenerate case collapses cleanly"
echo "multigpu-check: all ok"
