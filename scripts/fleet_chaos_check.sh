#!/bin/sh
# Cache-tier chaos gate: run a distributed sweep whose coordinator and
# workers share a 3-node uvmserved cache tier, with every node fronted
# by a netchaos fault-injecting proxy. Mid-sweep, partition one node
# (blackhole via the proxy's admin endpoint) and kill -9 another
# uvmserved outright. The sweep must still settle with its merged table
# byte-identical to a serial -jobs 1 run, nothing quarantined, the
# breaker-open events visible on the coordinator's /metrics page and in
# the structured logs, and a parseable flight-recorder dump from the
# moment a node was declared dark.
#
# Coordinator and workers run race-instrumented: the tier's breaker and
# failover paths are shared-state hot spots.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"
      [ -n "${cpid:-}" ] && kill "$cpid" 2>/dev/null || true
      [ -n "${spids:-}" ] && kill $spids 2>/dev/null || true
      [ -n "${ppids:-}" ] && kill $ppids 2>/dev/null || true
      [ -n "${wpids:-}" ] && kill $wpids 2>/dev/null || true' EXIT

go build -race -o "$tmp/uvmsweep" ./cmd/uvmsweep
go build -race -o "$tmp/uvmworker" ./cmd/uvmworker
go build -race -o "$tmp/uvmserved" ./cmd/uvmserved
go build -o "$tmp/netchaos" ./cmd/netchaos
go build -o "$tmp/uvmlogcheck" ./cmd/uvmlogcheck

# The dist_check sweep shape: 24 cells, enough traffic to trip breakers
# while the chaos lands mid-flight.
SWEEP="-workload random -footprints 0.5,0.75,1.0,1.25 -prefetch none,density,adaptive -replay batch,batchflush -csv"

CADDR=127.0.0.1:19540
CURL="http://$CADDR"
S1=127.0.0.1:19541; S2=127.0.0.1:19542; S3=127.0.0.1:19543
P1=127.0.0.1:19551; P2=127.0.0.1:19552; P3=127.0.0.1:19553
TIER="http://$P1,http://$P2,http://$P3"
mkdir -p "$tmp/flight"

# --- serial reference -------------------------------------------------
"$tmp/uvmsweep" $SWEEP -jobs 1 >"$tmp/serial.csv" 2>/dev/null

# --- 3 cache nodes, each behind a netchaos proxy ----------------------
spids=""
i=1
for addr in $S1 $S2 $S3; do
    "$tmp/uvmserved" -addr "$addr" -log-format json >"$tmp/served$i.log" 2>&1 &
    spids="$spids $!"
    i=$((i + 1))
done
s2pid=$(echo $spids | awk '{print $2}')
ppids=""
i=1
for pair in "$P1=$S1" "$P2=$S2" "$P3=$S3"; do
    "$tmp/netchaos" -listen "${pair%%=*}" -target "http://${pair#*=}" -seed "$i" \
        >"$tmp/chaos$i.log" 2>&1 &
    ppids="$ppids $!"
    i=$((i + 1))
done
for log in served1 served2 served3; do
    for n in $(seq 1 100); do
        grep -q "listening on" "$tmp/$log.log" 2>/dev/null && break
        if [ "$n" = 100 ]; then
            echo "fleet-chaos: $log never came up" >&2
            cat "$tmp/$log.log" >&2
            exit 1
        fi
        sleep 0.1
    done
done
for n in $(seq 1 100); do
    curl -fsS "http://$P1/__netchaos/rules" >/dev/null 2>&1 &&
        curl -fsS "http://$P2/__netchaos/rules" >/dev/null 2>&1 &&
        curl -fsS "http://$P3/__netchaos/rules" >/dev/null 2>&1 && break
    if [ "$n" = 100 ]; then
        echo "fleet-chaos: netchaos proxies never came up" >&2
        cat "$tmp"/chaos*.log >&2
        exit 1
    fi
    sleep 0.1
done
echo "fleet-chaos: 3 cache nodes up behind netchaos proxies"

# --- coordinator (write-through fills) + 2 tier-reading workers -------
"$tmp/uvmsweep" $SWEEP -listen "$CADDR" -cache-tier "$TIER" \
    -lease-ttl 5s -cell-retries 3 -log-format json -flight-dir "$tmp/flight" \
    >"$tmp/dist.csv" 2>"$tmp/coord.log" &
cpid=$!
for n in $(seq 1 100); do
    grep -q "coordinator listening" "$tmp/coord.log" 2>/dev/null && break
    if [ "$n" = 100 ]; then
        echo "fleet-chaos: coordinator never came up" >&2
        cat "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.1
done

wpids=""
for w in w1 w2; do
    "$tmp/uvmworker" -coordinator "$CURL" -name "$w" -serve "$TIER" \
        -tier-timeout 2s -log-format json -flight-dir "$tmp/flight" \
        >"$tmp/$w.log" 2>&1 &
    wpids="$wpids $!"
done

# Let the fleet do some healthy work first: the partition must land
# mid-sweep, not before it starts.
for n in $(seq 1 200); do
    grep -q '"msg":"lease acquired"' "$tmp/w1.log" 2>/dev/null &&
        grep -q '"msg":"lease acquired"' "$tmp/w2.log" 2>/dev/null && break
    if [ "$n" = 200 ]; then
        echo "fleet-chaos: workers never acquired a lease" >&2
        cat "$tmp/w1.log" "$tmp/w2.log" "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.05
done

# --- inject the chaos: partition one node, kill -9 another ------------
curl -fsS -X POST -d "blackhole" "http://$P1/__netchaos/rules" >/dev/null
kill -9 "$s2pid" 2>/dev/null || true
echo "fleet-chaos: node 1 partitioned (blackhole), node 2 killed -9 mid-sweep"

# The coordinator's /metrics page must show the tier declaring a node
# dark while the sweep is still running.
breaker_seen=0
for n in $(seq 1 300); do
    if ! kill -0 "$cpid" 2>/dev/null; then
        break
    fi
    opens=$(curl -fsS "$CURL/metrics" 2>/dev/null |
        sed -n 's/^cachetier_breaker_open_total \([0-9]*\)$/\1/p')
    if [ "${opens:-0}" -ge 1 ]; then
        breaker_seen=1
        echo "fleet-chaos: breaker open visible on coordinator /metrics (cachetier_breaker_open_total=$opens)"
        break
    fi
    sleep 0.2
done
if [ "$breaker_seen" -ne 1 ]; then
    echo "fleet-chaos: cachetier_breaker_open_total never reached 1 on /metrics while the sweep ran" >&2
    cat "$tmp/coord.log" >&2
    exit 1
fi

# --- the sweep must still settle cleanly ------------------------------
wait "$cpid" && status=0 || status=$?
cpid=
if [ "$status" -ne 0 ]; then
    echo "fleet-chaos: coordinator exited $status, want 0" >&2
    cat "$tmp/coord.log" >&2
    exit 1
fi
wstatus=0
for pid in $wpids; do
    wait "$pid" || wstatus=$?
done
wpids=
if [ "$wstatus" -ne 0 ]; then
    echo "fleet-chaos: a worker exited $wstatus, want 0" >&2
    cat "$tmp/w1.log" "$tmp/w2.log" >&2
    exit 1
fi

if ! diff "$tmp/serial.csv" "$tmp/dist.csv"; then
    echo "fleet-chaos: merged output differs from serial run under partition + kill" >&2
    exit 1
fi
echo "fleet-chaos: merged table byte-identical to serial -jobs 1 run"

summary=$(grep "# dist:" "$tmp/coord.log" || true)
echo "fleet-chaos: $summary"
quarantined=$(echo "$summary" | sed -n 's/.*quarantined=\([0-9]*\).*/\1/p')
if [ "${quarantined:-1}" -ne 0 ]; then
    echo "fleet-chaos: cells were quarantined under tier chaos (quarantined=$quarantined)" >&2
    exit 1
fi

# The breaker transitions must be in the structured logs...
if ! grep -hq '"msg":"breaker open"' "$tmp/w1.log" "$tmp/w2.log" "$tmp/coord.log"; then
    echo "fleet-chaos: no breaker-open transition logged anywhere" >&2
    exit 1
fi
# ...every structured line must satisfy the fleet schema...
grep -h '^{' "$tmp/coord.log" "$tmp/w1.log" "$tmp/w2.log" "$tmp"/served*.log >"$tmp/fleet.jsonl" || true
if [ ! -s "$tmp/fleet.jsonl" ]; then
    echo "fleet-chaos: no structured logs produced" >&2
    exit 1
fi
"$tmp/uvmlogcheck" -q "$tmp/fleet.jsonl"
# ...and declaring a node dark must have dumped a parseable flight
# recording.
set -- "$tmp/flight"/flightrec-*.json
if [ ! -f "$1" ]; then
    echo "fleet-chaos: no flight-recorder dump from the breaker opening" >&2
    exit 1
fi
"$tmp/uvmlogcheck" -flight "$@"
if ! grep -lq '"reason": *"breaker_open"' "$tmp/flight"/flightrec-*.json; then
    echo "fleet-chaos: no flight dump carries reason breaker_open" >&2
    exit 1
fi
echo "fleet-chaos: breaker transitions logged, flight dump parseable"

if grep -q "DATA RACE" "$tmp/coord.log" "$tmp/w1.log" "$tmp/w2.log" "$tmp"/served*.log; then
    echo "fleet-chaos: race detector fired:" >&2
    grep -A20 "DATA RACE" "$tmp"/*.log >&2
    exit 1
fi

# Surviving servers drain cleanly.
kill -TERM $(echo $spids | awk '{print $1, $3}') 2>/dev/null || true
spids=
kill $ppids 2>/dev/null || true
ppids=
echo "fleet-chaos: all ok"
