#!/bin/sh
# End-to-end smoke for the serving layer: start uvmserved, submit a
# fig3 cell, prove the cached re-submission is byte-identical (and
# observably a hit), force 429 backpressure under a deliberately tiny
# queue with uvmload, verify the structured telemetry (trace IDs echoed
# on the wire and greppable in the JSON logs), and SIGTERM-drain the
# server expecting exit 0.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

# The server runs race-instrumented: the load phase below doubles as a
# data-race hunt over the cache/admission/metrics paths.
go build -race -o "$tmp/uvmserved" ./cmd/uvmserved
go build -o "$tmp/uvmload" ./cmd/uvmload
go build -o "$tmp/uvmlogcheck" ./cmd/uvmlogcheck

ADDR=127.0.0.1:18844
URL="http://$ADDR"

# curl is not guaranteed in minimal CI images; a tiny Go fetcher keeps
# this script dependency-free. It prints the status code on line 1, the
# X-Uvmsim-Cache header on line 2, the echoed X-Trace-ID on line 3, the
# echoed X-Request-ID on line 4, then the body.
cat >"$tmp/fetch.go" <<'EOF'
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	method, url := os.Args[1], os.Args[2]
	var body io.Reader
	if len(os.Args) > 3 {
		body = strings.NewReader(os.Args[3])
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	fmt.Println(resp.StatusCode)
	fmt.Println(resp.Header.Get("X-Uvmsim-Cache"))
	fmt.Println(resp.Header.Get("X-Trace-ID"))
	fmt.Println(resp.Header.Get("X-Request-ID"))
	os.Stdout.Write(b)
}
EOF
go build -o "$tmp/fetch" "$tmp/fetch.go"
fetch() { "$tmp/fetch" "$@"; }

# --- start the server (tiny queue so overload is reachable) -----------
# JSON logs so the telemetry leg below can assert the schema.
"$tmp/uvmserved" -addr "$ADDR" -queue 2 -runs 1 -drain-grace 30s -log-format json >"$tmp/served.log" 2>&1 &
pid=$!

for i in $(seq 1 100); do
    if out=$(fetch GET "$URL/healthz" 2>/dev/null) && [ "$(echo "$out" | head -1)" = "200" ]; then
        break
    fi
    if [ "$i" = 100 ]; then
        echo "serve-check: server never became healthy" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "serve-check: healthz ok"

# --- fig3 quick: cold, then cached byte-identical re-submit -----------
# Full (non-quick) fig3 at 1/384 scale: tens of ms cold, sub-ms warm —
# enough separation to assert the cached path is measurably faster.
EXP_REQ='{"gpu_mem_mib":64,"quick":false}'

t0=$(date +%s%N 2>/dev/null || date +%s)
fetch POST "$URL/v1/exp/fig3" "$EXP_REQ" >"$tmp/cold.out"
t1=$(date +%s%N 2>/dev/null || date +%s)

status=$(head -1 "$tmp/cold.out"); src=$(sed -n 2p "$tmp/cold.out")
if [ "$status" != "200" ] || [ "$src" != "miss" ]; then
    echo "serve-check: cold fig3 = status $status source '$src', want 200 miss" >&2
    sed -n '5,10p' "$tmp/cold.out" >&2
    exit 1
fi
# The server mints and echoes the request's telemetry IDs.
trace=$(sed -n 3p "$tmp/cold.out"); rid=$(sed -n 4p "$tmp/cold.out")
if [ -z "$trace" ] || [ -z "$rid" ]; then
    echo "serve-check: cold response missing X-Trace-ID/X-Request-ID (got '$trace'/'$rid')" >&2
    exit 1
fi

t2=$(date +%s%N 2>/dev/null || date +%s)
fetch POST "$URL/v1/exp/fig3" "$EXP_REQ" >"$tmp/warm.out"
t3=$(date +%s%N 2>/dev/null || date +%s)

status=$(head -1 "$tmp/warm.out"); src=$(sed -n 2p "$tmp/warm.out")
if [ "$status" != "200" ] || [ "$src" != "hit" ]; then
    echo "serve-check: warm fig3 = status $status source '$src', want 200 hit" >&2
    exit 1
fi

# The cache contract: hit and miss bodies are byte-identical.
sed -n '5,$p' "$tmp/cold.out" >"$tmp/cold.body"
sed -n '5,$p' "$tmp/warm.out" >"$tmp/warm.body"
if ! cmp -s "$tmp/cold.body" "$tmp/warm.body"; then
    echo "serve-check: cached fig3 body differs from cold body" >&2
    diff "$tmp/cold.body" "$tmp/warm.body" >&2 || true
    exit 1
fi

cold_ms=$(( (t1 - t0) / 1000000 )); warm_ms=$(( (t3 - t2) / 1000000 )) 2>/dev/null || { cold_ms=-1; warm_ms=-1; }
# Only hold the timing claim when the cold run was slow enough for
# millisecond timing to be meaningful (it simulates a full sweep; the
# hit is pure IO).
if [ "$cold_ms" -ge 5 ] && [ "$warm_ms" -ge "$cold_ms" ]; then
    echo "serve-check: cached request (${warm_ms}ms) not faster than cold (${cold_ms}ms)" >&2
    exit 1
fi
echo "serve-check: fig3 cached re-submit byte-identical (cold ${cold_ms}ms, warm ${warm_ms}ms)"

# --- overload: tiny queue must shed with 429 --------------------------
# Pin the single run slot with a long serial sweep submitted as an async
# job (48 cells, ~1s). With the queue bound at 2, concurrent uvmload
# misses deterministically overflow it while the job runs.
JOB_REQ='{"workload":"regular","gpu_mem_mib":96,"footprints":[0.5,0.75,1.0,1.25],"prefetch":["none","density","adaptive"],"batch":[64,128,256,512]}'
fetch POST "$URL/v1/jobs" "$JOB_REQ" >"$tmp/job.out"
if [ "$(head -1 "$tmp/job.out")" != "202" ]; then
    echo "serve-check: job submit failed:" >&2
    cat "$tmp/job.out" >&2
    exit 1
fi

"$tmp/uvmload" -url "$URL" -n 200 -c 8 -distinct 24 -gpu-mem 96 >"$tmp/load.out"
cat "$tmp/load.out"
busy=$(sed -n 's/.*busy(429) \([0-9]*\).*/\1/p' "$tmp/load.out")
failed=$(sed -n 's/.*transport-failed \([0-9]*\).*/\1/p' "$tmp/load.out")
if [ "${failed:-1}" != "0" ]; then
    echo "serve-check: uvmload saw transport failures" >&2
    exit 1
fi
if [ "${busy:-0}" = "0" ]; then
    echo "serve-check: expected 429 backpressure under -queue 2 -runs 1, saw none" >&2
    exit 1
fi

# Cross-check the server's own accounting.
fetch GET "$URL/metrics" >"$tmp/metrics.out"
rejected=$(sed -n 's/^uvmserved_rejected_total \([0-9]*\)$/\1/p' "$tmp/metrics.out")
if [ "${rejected:-0}" != "$busy" ]; then
    echo "serve-check: uvmserved_rejected_total=$rejected but clients saw $busy rejections" >&2
    exit 1
fi
echo "serve-check: backpressure ok ($busy rejections, metrics agree)"

# Per-endpoint RED metrics, with the wall-clock latency histogram
# rendered as a cumulative Prometheus histogram (_bucket{le=...}).
if ! grep -q '^uvmserved_http_v1_sim_requests_total ' "$tmp/metrics.out"; then
    echo "serve-check: RED request counter missing from /metrics" >&2
    exit 1
fi
if ! grep -q '_latency_wall_ns_bucket{le="' "$tmp/metrics.out"; then
    echo "serve-check: wall-clock latency histogram has no cumulative buckets" >&2
    exit 1
fi
echo "serve-check: RED metrics exported with cumulative wall-clock buckets"

# --- SIGTERM drain must exit 0 ----------------------------------------
kill -TERM "$pid"
wait "$pid" && status=0 || status=$?
pid=
if [ "$status" -ne 0 ]; then
    echo "serve-check: drained server exited $status, want 0" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
if grep -q "DATA RACE" "$tmp/served.log"; then
    echo "serve-check: race detector fired in the server:" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
echo "serve-check: SIGTERM drain exited 0, no data races"

# --- structured telemetry: schema-valid logs, greppable traces --------
# After the drain every log line is flushed. The structured subset must
# validate against the fleet schema, and the cold request's trace must
# land on both its access-log line and its cache-fill line.
grep '^{' "$tmp/served.log" >"$tmp/served.jsonl" || true
if [ ! -s "$tmp/served.jsonl" ]; then
    echo "serve-check: server emitted no structured log lines" >&2
    exit 1
fi
"$tmp/uvmlogcheck" -q "$tmp/served.jsonl"
if ! grep "\"trace_id\":\"$trace\"" "$tmp/served.jsonl" | grep -q '"msg":"http request"'; then
    echo "serve-check: no access-log line for trace $trace" >&2
    exit 1
fi
if ! grep "\"trace_id\":\"$trace\"" "$tmp/served.jsonl" | grep -q '"msg":"cache fill"'; then
    echo "serve-check: no cache-fill line for trace $trace" >&2
    exit 1
fi
if ! grep "\"trace_id\":\"$trace\"" "$tmp/served.jsonl" | grep -q "\"req_id\":\"$rid\""; then
    echo "serve-check: trace $trace logged without its request ID $rid" >&2
    exit 1
fi
echo "serve-check: telemetry ok (trace $trace greppable from wire to cache fill)"
echo "serve-check: all ok"
