#!/bin/sh
# Kill-and-resume check: SIGINT uvmsweep mid-run, resume from its
# journal, and require the resumed output to be byte-identical to an
# uninterrupted run — at several worker counts.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/uvmsweep" ./cmd/uvmsweep

SWEEP="-workload random -footprints 0.5,0.75,1.0,1.25 -prefetch none,density,adaptive -replay batch,batchflush -csv"

for jobs in 1 4 8; do
    "$tmp/uvmsweep" $SWEEP -jobs "$jobs" -journal "$tmp/clean.$jobs.jsonl" >"$tmp/clean.$jobs.csv" 2>/dev/null

    # Interrupt a second run mid-flight. If it finishes before the signal
    # lands (fast machine), the resume below degenerates to a full-reuse
    # replay — still a valid check.
    "$tmp/uvmsweep" $SWEEP -jobs "$jobs" -journal "$tmp/kill.$jobs.jsonl" >/dev/null 2>&1 &
    pid=$!
    sleep 0.3
    kill -INT "$pid" 2>/dev/null || true
    wait "$pid" && status=0 || status=$?
    if [ "$status" -ne 0 ] && [ "$status" -ne 130 ]; then
        echo "resume-check: interrupted sweep exited $status (want 0 or 130)" >&2
        exit 1
    fi

    "$tmp/uvmsweep" $SWEEP -jobs "$jobs" -journal "$tmp/kill.$jobs.jsonl" -resume >"$tmp/resumed.$jobs.csv" 2>/dev/null

    if ! diff "$tmp/clean.$jobs.csv" "$tmp/resumed.$jobs.csv"; then
        echo "resume-check: jobs=$jobs resumed output differs from clean run" >&2
        exit 1
    fi
    echo "resume-check: jobs=$jobs ok (interrupt exit $status)"
done
