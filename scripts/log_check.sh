#!/bin/sh
# Telemetry-schema gate: uvmlogcheck must accept everything the fleet
# actually emits and reject malformed lines/dumps. Runs a real
# race-instrumented uvmserved in JSON mode, validates every structured
# line it logs (all carrying trace IDs on request paths), then probes
# uvmlogcheck's negative space with hand-built bad lines and dumps.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -race -o "$tmp/uvmserved" ./cmd/uvmserved
go build -o "$tmp/uvmload" ./cmd/uvmload
go build -o "$tmp/uvmlogcheck" ./cmd/uvmlogcheck

ADDR=127.0.0.1:18845
URL="http://$ADDR"

# --- live JSON logs from a real server --------------------------------
"$tmp/uvmserved" -addr "$ADDR" -log-format json >"$tmp/served.log" 2>&1 &
pid=$!
for i in $(seq 1 100); do
    grep -q "listening on" "$tmp/served.log" 2>/dev/null && break
    if [ "$i" = 100 ]; then
        echo "log-check: server never came up" >&2
        cat "$tmp/served.log" >&2
        exit 1
    fi
    sleep 0.1
done

# A small load run stamps every request with a derived trace ID.
"$tmp/uvmload" -url "$URL" -n 20 -c 4 -distinct 4 -log-format json >/dev/null 2>"$tmp/load.log"

kill -TERM "$pid"; wait "$pid" || { echo "log-check: server drain failed" >&2; exit 1; }
pid=

# The server mixes legacy stderr lines with structured ones; the
# structured subset is the schema's jurisdiction.
grep '^{' "$tmp/served.log" >"$tmp/served.jsonl" || true
grep '^{' "$tmp/load.log" >"$tmp/load.jsonl" || true
if [ ! -s "$tmp/served.jsonl" ]; then
    echo "log-check: server emitted no structured lines" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
"$tmp/uvmlogcheck" "$tmp/served.jsonl" "$tmp/load.jsonl"

# Request-path lines (access log, cache fills) must be fully attributed.
grep '"msg":"http request"' "$tmp/served.jsonl" >"$tmp/access.jsonl"
"$tmp/uvmlogcheck" -q -require-trace "$tmp/access.jsonl"
n=$(wc -l <"$tmp/access.jsonl")
echo "log-check: $n access-log lines, all schema-valid with trace IDs"

# --- negative space: malformed lines must be rejected ------------------
bad() {
    printf '%s\n' "$1" >"$tmp/bad.jsonl"
    if "$tmp/uvmlogcheck" -q "$tmp/bad.jsonl" 2>/dev/null; then
        echo "log-check: uvmlogcheck accepted a malformed line: $1" >&2
        exit 1
    fi
}
bad 'not json at all'
bad '{"time":"2026-01-01T00:00:00Z","level":"INFO"}'
bad '{"time":"2026-01-01T00:00:00Z","level":"LOUD","msg":"x"}'
bad '{"time":"2026-01-01T00:00:00Z","level":"INFO","msg":"x","trace_id":"nope"}'
echo "log-check: malformed lines rejected"

# --- flight dumps: valid accepted, invalid rejected --------------------
cat >"$tmp/good-dump.json" <<'EOF'
{
  "reason": "invariant_panic",
  "dumped_at_ns": 1700000000000000000,
  "dropped": 0,
  "events": [
    {"seq": 1, "time_ns": 1, "level": "INFO", "msg": "first"},
    {"seq": 2, "time_ns": 2, "level": "ERROR", "msg": "second"}
  ]
}
EOF
"$tmp/uvmlogcheck" -flight "$tmp/good-dump.json"

cat >"$tmp/bad-dump.json" <<'EOF'
{
  "reason": "invariant_panic",
  "events": [
    {"seq": 2, "time_ns": 1, "level": "INFO", "msg": "first"},
    {"seq": 1, "time_ns": 2, "level": "ERROR", "msg": "second"}
  ]
}
EOF
if "$tmp/uvmlogcheck" -q -flight "$tmp/bad-dump.json" 2>/dev/null; then
    echo "log-check: uvmlogcheck accepted a dump with non-increasing seq" >&2
    exit 1
fi
echo "log-check: flight-dump validation ok"

if grep -q "DATA RACE" "$tmp/served.log"; then
    echo "log-check: race detector fired in the server:" >&2
    cat "$tmp/served.log" >&2
    exit 1
fi
echo "log-check: all ok"
