#!/bin/sh
# bench_check.sh — continuous benchmark regression gate.
#
# Runs the guarded benchmark suite (driver/tree/mem/engine micro
# benchmarks plus the instrumented end-to-end DriverService bench),
# converts the output to JSON with cmd/benchjson, and compares it
# against the committed baseline results/bench_baseline.json.
#
# The alloc/op gate is the strict contract: allocation counts are
# deterministic, so any growth beyond BENCH_ALLOC_TOL (default 10%) on a
# guarded benchmark fails the build — including the zero-alloc hot paths,
# where a single new alloc/op is an infinite regression. The ns/op gate
# is a backstop over the micro benchmarks only: scheduler noise on
# shared/virtualized hosts reaches ±20% even on min-of-3 runs, so the
# default BENCH_TIME_TOL is 30% — loose enough not to flake, tight
# enough to trip on real hot-path regressions (reverting any one of the
# scratch-arena optimizations costs 45%+ on its benchmark). On quiet
# dedicated hardware run with BENCH_TIME_TOL=10 for the strict gate.
#
# Regenerate the baseline (only when a perf change is intentional):
#   make bench_baseline
set -eu

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-results/bench_baseline.json}
ALLOC_TOL=${BENCH_ALLOC_TOL:-10}
TIME_TOL=${BENCH_TIME_TOL:-30}
# Guarded sets: allocs are gated everywhere the baseline measures them;
# timing only on the hot-path micro benchmarks (macro runs are too short
# to time stably in a gate).
ALLOC_GUARD='BenchmarkBinBatch|BenchmarkMapOps|BenchmarkPlan|BenchmarkBitmapWordScan|BenchmarkDriverService|BenchmarkEngineChain'
TIME_GUARD='BenchmarkBinBatch|BenchmarkMapOps|BenchmarkPlan|BenchmarkBitmapWordScan'

mode=${1:-check}
if [ "$mode" != check ] && [ "$mode" != --update-baseline ]; then
    echo "usage: bench_check.sh [--update-baseline]" >&2
    exit 2
fi
if [ "$mode" = check ] && [ ! -f "$BASELINE" ]; then
    echo "bench_check: missing baseline $BASELINE (run: make bench_baseline)" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# -count=3 with a time-based benchtime: benchjson keeps the minimum
# ns/op of the three runs (least scheduler noise) and the maximum
# allocs/op (conservative for the alloc gate).
go test -bench 'BenchmarkBinBatch|BenchmarkMapOps|BenchmarkPlan|BenchmarkBitmapWordScan|BenchmarkEngineChain' \
    -benchmem -benchtime 0.2s -run '^$' -count=3 \
    ./internal/driver ./internal/tree ./internal/mem ./internal/sim >"$tmp/raw.txt"
go test -bench BenchmarkDriverService -benchmem -benchtime 2x -run '^$' -count=3 \
    ./internal/core >>"$tmp/raw.txt"

if [ "$mode" = --update-baseline ]; then
    mkdir -p "$(dirname "$BASELINE")"
    go run ./cmd/benchjson -o "$BASELINE" <"$tmp/raw.txt"
    echo "bench_check: baseline updated: $BASELINE"
    exit 0
fi

go run ./cmd/benchjson -o "$tmp/current.json" <"$tmp/raw.txt"

echo "bench_check: comparing against $BASELINE (alloc tol ${ALLOC_TOL}%, time tol ${TIME_TOL}%)"
go run ./cmd/benchjson -compare \
    -alloc-guard "$ALLOC_GUARD" -alloc-tol "$ALLOC_TOL" \
    -time-guard "$TIME_GUARD" -time-tol "$TIME_TOL" \
    "$BASELINE" "$tmp/current.json"
echo "bench_check: OK"
