#!/bin/sh
# Kill-and-recover gate for the distributed sweep fabric: run a sweep
# through a coordinator plus three external workers, kill -9 one worker
# while it provably holds a lease, inject a duplicate completion from
# another, and require the merged output to be byte-identical to a
# serial -jobs 1 run with the coordinator exiting 0. A second leg
# exercises the self-spawning path (-workers N) end to end. A third leg
# runs the full telemetry fleet — coordinator, serve-backed worker with
# an injected failure, shared uvmserved cache — all logging JSON, and
# requires one trace ID greppable through every layer plus a parseable
# flight-recorder dump from the induced failure.
#
# Everything runs race-instrumented: the lease/heartbeat/dedup paths are
# exactly where a data race would hide.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"
      [ -n "${cpid:-}" ] && kill "$cpid" 2>/dev/null || true
      [ -n "${spid:-}" ] && kill "$spid" 2>/dev/null || true
      [ -n "${wpids:-}" ] && kill $wpids 2>/dev/null || true' EXIT

go build -race -o "$tmp/uvmsweep" ./cmd/uvmsweep
go build -race -o "$tmp/uvmworker" ./cmd/uvmworker
go build -race -o "$tmp/uvmserved" ./cmd/uvmserved
go build -o "$tmp/uvmlogcheck" ./cmd/uvmlogcheck

# The fig3 shape: footprint sweep crossed with prefetch and replay
# policies (24 cells), the same sweep the resume gate uses.
SWEEP="-workload random -footprints 0.5,0.75,1.0,1.25 -prefetch none,density,adaptive -replay batch,batchflush -csv"
ADDR=127.0.0.1:19484
URL="http://$ADDR"

# --- serial reference -------------------------------------------------
"$tmp/uvmsweep" $SWEEP -jobs 1 >"$tmp/serial.csv" 2>/dev/null

# --- coordinator + 3 external workers, one killed mid-sweep -----------
# Short lease TTL so the killed worker's cell is reassigned quickly.
"$tmp/uvmsweep" $SWEEP -listen "$ADDR" -journal "$tmp/dist.jsonl" \
    -lease-ttl 1s -cell-retries 3 >"$tmp/dist.csv" 2>"$tmp/coord.log" &
cpid=$!

for i in $(seq 1 100); do
    grep -q "coordinator listening" "$tmp/coord.log" 2>/dev/null && break
    if [ "$i" = 100 ]; then
        echo "dist-check: coordinator never came up" >&2
        cat "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$tmp/uvmworker" -coordinator "$URL" -name steady >"$tmp/w1.log" 2>&1 &
w1=$!
"$tmp/uvmworker" -coordinator "$URL" -name dup -inject-dup >"$tmp/w2.log" 2>&1 &
w2=$!
# The victim pauses 2s after acquiring each lease, before its first
# heartbeat — so the kill below is guaranteed to land on a held lease
# that then expires at the coordinator.
"$tmp/uvmworker" -coordinator "$URL" -name victim -slow 2s >"$tmp/w3.log" 2>&1 &
w3=$!
wpids="$w1 $w2 $w3"

for i in $(seq 1 200); do
    grep -q "lease " "$tmp/w3.log" 2>/dev/null && break
    if [ "$i" = 200 ]; then
        echo "dist-check: victim never acquired a lease" >&2
        cat "$tmp/w3.log" "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$w3" 2>/dev/null || true
echo "dist-check: victim killed -9 while holding a lease"

wait "$cpid" && status=0 || status=$?
cpid=
if [ "$status" -ne 0 ]; then
    echo "dist-check: coordinator exited $status, want 0" >&2
    cat "$tmp/coord.log" >&2
    exit 1
fi
wait "$w1" && w1s=0 || w1s=$?
wait "$w2" && w2s=0 || w2s=$?
wpids=
if [ "$w1s" -ne 0 ] || [ "$w2s" -ne 0 ]; then
    echo "dist-check: surviving workers exited $w1s/$w2s, want 0/0" >&2
    cat "$tmp/w1.log" "$tmp/w2.log" >&2
    exit 1
fi

if ! diff "$tmp/serial.csv" "$tmp/dist.csv"; then
    echo "dist-check: merged distributed output differs from serial run" >&2
    exit 1
fi
echo "dist-check: merged output byte-identical to serial run"

# The fabric must have actually seen the chaos: the victim's lease
# expired and was re-granted, and the injected duplicate was absorbed.
summary=$(grep "# dist:" "$tmp/coord.log" || true)
echo "dist-check: $summary"
expired=$(echo "$summary" | sed -n 's/.*expired=\([0-9]*\).*/\1/p')
retries=$(echo "$summary" | sed -n 's/.*retries=\([0-9]*\).*/\1/p')
dups=$(echo "$summary" | sed -n 's/.*duplicates=\([0-9]*\).*/\1/p')
quarantined=$(echo "$summary" | sed -n 's/.*quarantined=\([0-9]*\).*/\1/p')
if [ "${expired:-0}" -lt 1 ] || [ "${retries:-0}" -lt 1 ]; then
    echo "dist-check: expected >=1 lease expiry and retry after kill -9 (expired=$expired retries=$retries)" >&2
    exit 1
fi
if [ "${dups:-0}" -lt 1 ]; then
    echo "dist-check: injected duplicate completion was not observed (duplicates=$dups)" >&2
    exit 1
fi
if [ "${quarantined:-1}" -ne 0 ]; then
    echo "dist-check: healthy cells were quarantined (quarantined=$quarantined)" >&2
    exit 1
fi

if grep -q "DATA RACE" "$tmp/coord.log" "$tmp/w1.log" "$tmp/w2.log" "$tmp/w3.log"; then
    echo "dist-check: race detector fired:" >&2
    grep -A20 "DATA RACE" "$tmp"/*.log >&2
    exit 1
fi
echo "dist-check: kill-and-recover ok (expired=$expired retries=$retries duplicates=$dups)"

# --- self-spawning mode: uvmsweep -workers N --------------------------
# A smaller sweep (6 cells) through coordinator-spawned local workers;
# uvmworker is found as a sibling of the uvmsweep binary.
SMALL="-workload random -footprints 0.5,1.25 -prefetch none,density,adaptive -csv"
"$tmp/uvmsweep" $SMALL -jobs 1 >"$tmp/small-serial.csv" 2>/dev/null
"$tmp/uvmsweep" $SMALL -workers 2 >"$tmp/small-dist.csv" 2>"$tmp/spawn.log" && status=0 || status=$?
if [ "$status" -ne 0 ]; then
    echo "dist-check: -workers 2 sweep exited $status, want 0" >&2
    cat "$tmp/spawn.log" >&2
    exit 1
fi
if ! diff "$tmp/small-serial.csv" "$tmp/small-dist.csv"; then
    echo "dist-check: -workers 2 output differs from serial run" >&2
    exit 1
fi
if grep -q "DATA RACE" "$tmp/spawn.log"; then
    echo "dist-check: race detector fired in spawn leg:" >&2
    cat "$tmp/spawn.log" >&2
    exit 1
fi
echo "dist-check: -workers 2 spawn mode byte-identical to serial run"

# --- telemetry leg: one trace through every layer, flight dump --------
# The same 6-cell sweep through a JSON-logging coordinator and one
# worker that (a) consults a shared uvmserved cache, so the trace must
# survive the HTTP hop, and (b) misreports its first completed cell as
# failed, so the retry path runs and the worker dumps its flight
# recorder. Output must still be byte-identical (the rerun's
# deterministic row merges cleanly) with nothing quarantined.
SADDR=127.0.0.1:19485
SURL="http://$SADDR"
ADDR3=127.0.0.1:19486
mkdir -p "$tmp/flight"

"$tmp/uvmserved" -addr "$SADDR" -log-format json >"$tmp/served3.log" 2>&1 &
spid=$!
for i in $(seq 1 100); do
    grep -q "listening on" "$tmp/served3.log" 2>/dev/null && break
    if [ "$i" = 100 ]; then
        echo "dist-check: uvmserved never came up" >&2
        cat "$tmp/served3.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$tmp/uvmsweep" $SMALL -listen "$ADDR3" -lease-ttl 5s -cell-retries 3 \
    -log-format json >"$tmp/dist3.csv" 2>"$tmp/coord3.log" &
cpid=$!
for i in $(seq 1 100); do
    grep -q "coordinator listening" "$tmp/coord3.log" 2>/dev/null && break
    if [ "$i" = 100 ]; then
        echo "dist-check: telemetry-leg coordinator never came up" >&2
        cat "$tmp/coord3.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$tmp/uvmworker" -coordinator "http://$ADDR3" -name traced -serve "$SURL" \
    -inject-fail 1 -flight-dir "$tmp/flight" -log-format json >"$tmp/w4.log" 2>&1 &
wpids=$!

wait "$cpid" && c3s=0 || c3s=$?
cpid=
wait $wpids && w4s=0 || w4s=$?
wpids=
if [ "$c3s" -ne 0 ] || [ "$w4s" -ne 0 ]; then
    echo "dist-check: telemetry leg exited coordinator=$c3s worker=$w4s, want 0/0" >&2
    cat "$tmp/coord3.log" "$tmp/w4.log" >&2
    exit 1
fi
kill -TERM "$spid" && wait "$spid" || true
spid=

if ! diff "$tmp/small-serial.csv" "$tmp/dist3.csv"; then
    echo "dist-check: telemetry-leg output differs from serial run" >&2
    exit 1
fi

# Every structured line any layer wrote must satisfy the fleet schema.
grep -h '^{' "$tmp/coord3.log" "$tmp/w4.log" "$tmp/served3.log" >"$tmp/fleet.jsonl" || true
if [ ! -s "$tmp/fleet.jsonl" ]; then
    echo "dist-check: telemetry leg produced no structured logs" >&2
    exit 1
fi
"$tmp/uvmlogcheck" -q "$tmp/fleet.jsonl"

# One trace, four layers: the first granted cell's trace must appear on
# the coordinator's grant and completion lines, the worker's lease
# lines, and the serve tier's access-log and cache-fill lines.
trace3=$(grep '"msg":"lease granted"' "$tmp/coord3.log" | head -1 | sed -n 's/.*"trace_id":"\([^"]*\)".*/\1/p')
if [ -z "$trace3" ]; then
    echo "dist-check: no lease-granted trace in coordinator log" >&2
    cat "$tmp/coord3.log" >&2
    exit 1
fi
for probe in \
    "coord3.log:completion received" \
    "w4.log:lease acquired" \
    "served3.log:http request" \
    "served3.log:cache fill"; do
    f=${probe%%:*}; msg=${probe#*:}
    if ! grep "\"trace_id\":\"$trace3\"" "$tmp/$f" | grep -q "\"msg\":\"$msg\""; then
        echo "dist-check: trace $trace3 missing from $f (\"$msg\")" >&2
        exit 1
    fi
done
echo "dist-check: trace $trace3 greppable through coordinator, worker, and serve tier"

# The injected failure must have exercised the retry path...
summary3=$(grep "# dist:" "$tmp/coord3.log" || true)
retries3=$(echo "$summary3" | sed -n 's/.*retries=\([0-9]*\).*/\1/p')
quarantined3=$(echo "$summary3" | sed -n 's/.*quarantined=\([0-9]*\).*/\1/p')
if [ "${retries3:-0}" -lt 1 ] || [ "${quarantined3:-1}" -ne 0 ]; then
    echo "dist-check: injected failure not absorbed (retries=$retries3 quarantined=$quarantined3)" >&2
    exit 1
fi
if ! grep -q '"msg":"lease run failed"' "$tmp/w4.log"; then
    echo "dist-check: worker never logged the injected failure" >&2
    exit 1
fi
# ...and dumped a parseable flight recording.
set -- "$tmp/flight"/flightrec-*.json
if [ ! -f "$1" ]; then
    echo "dist-check: no flight-recorder dump after injected failure" >&2
    exit 1
fi
"$tmp/uvmlogcheck" -flight "$@"
echo "dist-check: injected failure retried cleanly, flight dump parseable"

if grep -q "DATA RACE" "$tmp/coord3.log" "$tmp/w4.log" "$tmp/served3.log"; then
    echo "dist-check: race detector fired in telemetry leg:" >&2
    grep -A20 "DATA RACE" "$tmp"/*.log >&2
    exit 1
fi
echo "dist-check: all ok"
