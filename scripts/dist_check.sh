#!/bin/sh
# Kill-and-recover gate for the distributed sweep fabric: run a sweep
# through a coordinator plus three external workers, kill -9 one worker
# while it provably holds a lease, inject a duplicate completion from
# another, and require the merged output to be byte-identical to a
# serial -jobs 1 run with the coordinator exiting 0. A second leg
# exercises the self-spawning path (-workers N) end to end.
#
# Everything runs race-instrumented: the lease/heartbeat/dedup paths are
# exactly where a data race would hide.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"
      [ -n "${cpid:-}" ] && kill "$cpid" 2>/dev/null || true
      [ -n "${wpids:-}" ] && kill $wpids 2>/dev/null || true' EXIT

go build -race -o "$tmp/uvmsweep" ./cmd/uvmsweep
go build -race -o "$tmp/uvmworker" ./cmd/uvmworker

# The fig3 shape: footprint sweep crossed with prefetch and replay
# policies (24 cells), the same sweep the resume gate uses.
SWEEP="-workload random -footprints 0.5,0.75,1.0,1.25 -prefetch none,density,adaptive -replay batch,batchflush -csv"
ADDR=127.0.0.1:19484
URL="http://$ADDR"

# --- serial reference -------------------------------------------------
"$tmp/uvmsweep" $SWEEP -jobs 1 >"$tmp/serial.csv" 2>/dev/null

# --- coordinator + 3 external workers, one killed mid-sweep -----------
# Short lease TTL so the killed worker's cell is reassigned quickly.
"$tmp/uvmsweep" $SWEEP -listen "$ADDR" -journal "$tmp/dist.jsonl" \
    -lease-ttl 1s -cell-retries 3 >"$tmp/dist.csv" 2>"$tmp/coord.log" &
cpid=$!

for i in $(seq 1 100); do
    grep -q "coordinator listening" "$tmp/coord.log" 2>/dev/null && break
    if [ "$i" = 100 ]; then
        echo "dist-check: coordinator never came up" >&2
        cat "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$tmp/uvmworker" -coordinator "$URL" -name steady >"$tmp/w1.log" 2>&1 &
w1=$!
"$tmp/uvmworker" -coordinator "$URL" -name dup -inject-dup >"$tmp/w2.log" 2>&1 &
w2=$!
# The victim pauses 2s after acquiring each lease, before its first
# heartbeat — so the kill below is guaranteed to land on a held lease
# that then expires at the coordinator.
"$tmp/uvmworker" -coordinator "$URL" -name victim -slow 2s >"$tmp/w3.log" 2>&1 &
w3=$!
wpids="$w1 $w2 $w3"

for i in $(seq 1 200); do
    grep -q "lease " "$tmp/w3.log" 2>/dev/null && break
    if [ "$i" = 200 ]; then
        echo "dist-check: victim never acquired a lease" >&2
        cat "$tmp/w3.log" "$tmp/coord.log" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$w3" 2>/dev/null || true
echo "dist-check: victim killed -9 while holding a lease"

wait "$cpid" && status=0 || status=$?
cpid=
if [ "$status" -ne 0 ]; then
    echo "dist-check: coordinator exited $status, want 0" >&2
    cat "$tmp/coord.log" >&2
    exit 1
fi
wait "$w1" && w1s=0 || w1s=$?
wait "$w2" && w2s=0 || w2s=$?
wpids=
if [ "$w1s" -ne 0 ] || [ "$w2s" -ne 0 ]; then
    echo "dist-check: surviving workers exited $w1s/$w2s, want 0/0" >&2
    cat "$tmp/w1.log" "$tmp/w2.log" >&2
    exit 1
fi

if ! diff "$tmp/serial.csv" "$tmp/dist.csv"; then
    echo "dist-check: merged distributed output differs from serial run" >&2
    exit 1
fi
echo "dist-check: merged output byte-identical to serial run"

# The fabric must have actually seen the chaos: the victim's lease
# expired and was re-granted, and the injected duplicate was absorbed.
summary=$(grep "# dist:" "$tmp/coord.log" || true)
echo "dist-check: $summary"
expired=$(echo "$summary" | sed -n 's/.*expired=\([0-9]*\).*/\1/p')
retries=$(echo "$summary" | sed -n 's/.*retries=\([0-9]*\).*/\1/p')
dups=$(echo "$summary" | sed -n 's/.*duplicates=\([0-9]*\).*/\1/p')
quarantined=$(echo "$summary" | sed -n 's/.*quarantined=\([0-9]*\).*/\1/p')
if [ "${expired:-0}" -lt 1 ] || [ "${retries:-0}" -lt 1 ]; then
    echo "dist-check: expected >=1 lease expiry and retry after kill -9 (expired=$expired retries=$retries)" >&2
    exit 1
fi
if [ "${dups:-0}" -lt 1 ]; then
    echo "dist-check: injected duplicate completion was not observed (duplicates=$dups)" >&2
    exit 1
fi
if [ "${quarantined:-1}" -ne 0 ]; then
    echo "dist-check: healthy cells were quarantined (quarantined=$quarantined)" >&2
    exit 1
fi

if grep -q "DATA RACE" "$tmp/coord.log" "$tmp/w1.log" "$tmp/w2.log" "$tmp/w3.log"; then
    echo "dist-check: race detector fired:" >&2
    grep -A20 "DATA RACE" "$tmp"/*.log >&2
    exit 1
fi
echo "dist-check: kill-and-recover ok (expired=$expired retries=$retries duplicates=$dups)"

# --- self-spawning mode: uvmsweep -workers N --------------------------
# A smaller sweep (6 cells) through coordinator-spawned local workers;
# uvmworker is found as a sibling of the uvmsweep binary.
SMALL="-workload random -footprints 0.5,1.25 -prefetch none,density,adaptive -csv"
"$tmp/uvmsweep" $SMALL -jobs 1 >"$tmp/small-serial.csv" 2>/dev/null
"$tmp/uvmsweep" $SMALL -workers 2 >"$tmp/small-dist.csv" 2>"$tmp/spawn.log" && status=0 || status=$?
if [ "$status" -ne 0 ]; then
    echo "dist-check: -workers 2 sweep exited $status, want 0" >&2
    cat "$tmp/spawn.log" >&2
    exit 1
fi
if ! diff "$tmp/small-serial.csv" "$tmp/small-dist.csv"; then
    echo "dist-check: -workers 2 output differs from serial run" >&2
    exit 1
fi
if grep -q "DATA RACE" "$tmp/spawn.log"; then
    echo "dist-check: race detector fired in spawn leg:" >&2
    cat "$tmp/spawn.log" >&2
    exit 1
fi
echo "dist-check: -workers 2 spawn mode byte-identical to serial run"
echo "dist-check: all ok"
