package uvmsim

// One benchmark per paper table/figure plus the ablations: each runs the
// corresponding experiment generator at a reduced "quick" scale so that
// `go test -bench=.` regenerates every artifact's shape in minutes. Full
// sweeps are available via cmd/uvmbench. The reported metrics expose the
// headline quantity of each artifact alongside ns/op.

import (
	"strconv"
	"testing"

	"uvmsim/internal/exp"
)

func benchScale() exp.Scale {
	return exp.Scale{GPUMemoryBytes: 48 << 20, Seed: 1, Quick: true}
}

// benchExperiment runs one experiment generator per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(id, sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

// BenchmarkFig1AccessLatency regenerates Fig. 1: explicit vs UVM vs
// UVM+prefetch page-touch latency across the memory limit.
func BenchmarkFig1AccessLatency(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig3CostBreakdown regenerates Fig. 3: fault cost scaling and
// driver-phase breakdown under the default batch-flush policy.
func BenchmarkFig3CostBreakdown(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4ServiceBreakdown regenerates Fig. 4: the service split
// (PMA alloc / migrate / map) at small sizes.
func BenchmarkFig4ServiceBreakdown(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5BatchPolicy regenerates Fig. 5: the Batch replay policy's
// replay-vs-preprocessing trade-off.
func BenchmarkFig5BatchPolicy(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7AccessPatterns regenerates Fig. 7: driver-observed fault
// patterns per workload.
func BenchmarkFig7AccessPatterns(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable1FaultReduction regenerates Table I: fault reduction
// from prefetching across the suite.
func BenchmarkTable1FaultReduction(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkFig8EvictRefault regenerates Fig. 8: sgemm at 120% with
// evict-then-refault accounting.
func BenchmarkFig8EvictRefault(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9OversubBreakdown regenerates Fig. 9: oversubscribed
// breakdowns with prefetching for both access patterns.
func BenchmarkFig9OversubBreakdown(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10ComputeRate regenerates Fig. 10: the sgemm compute-rate
// cliff across the memory limit.
func BenchmarkFig10ComputeRate(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable2SGEMMScaling regenerates Table II: sgemm fault/eviction
// scaling with problem size.
func BenchmarkTable2SGEMMScaling(b *testing.B) { benchExperiment(b, "tab2") }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationReplayPolicy sweeps the four replay policies.
func BenchmarkAblationReplayPolicy(b *testing.B) { benchExperiment(b, "abl-policy") }

// BenchmarkAblationThreshold sweeps the density threshold.
func BenchmarkAblationThreshold(b *testing.B) { benchExperiment(b, "abl-thresh") }

// BenchmarkAblationBatchSize sweeps the fault batch size.
func BenchmarkAblationBatchSize(b *testing.B) { benchExperiment(b, "abl-batch") }

// BenchmarkAblationEviction compares eviction policies oversubscribed.
func BenchmarkAblationEviction(b *testing.B) { benchExperiment(b, "abl-evict") }

// BenchmarkAblationGranularity sweeps the VABlock size.
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "abl-gran") }

// BenchmarkAblationAdaptive compares adaptive vs static prefetching.
func BenchmarkAblationAdaptive(b *testing.B) { benchExperiment(b, "abl-adapt") }

// Micro-benchmarks of the simulation substrate itself: these measure the
// simulator's own throughput (host-side cost of simulated work), which
// bounds how large a scaled experiment can run.

// BenchmarkSimulatorPageTouch measures end-to-end simulated-fault
// throughput: one UVM page-touch run per iteration.
func BenchmarkSimulatorPageTouch(b *testing.B) {
	for _, size := range []int64{1 << 20, 8 << 20} {
		b.Run("data="+strconv.FormatInt(size>>20, 10)+"MiB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(DefaultConfig(48 << 20))
				if err != nil {
					b.Fatal(err)
				}
				k, err := BuildWorkload(sys, "regular", size, DefaultWorkloadParams())
				if err != nil {
					b.Fatal(err)
				}
				res, err := sys.RunUVM(k)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Faults), "faults/op")
			}
		})
	}
}

// BenchmarkSimulatorSGEMM measures simulator throughput on the reuse-heavy
// sgemm kernel.
func BenchmarkSimulatorSGEMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(DefaultConfig(48 << 20))
		if err != nil {
			b.Fatal(err)
		}
		k, err := BuildSGEMM(sys, 512, DefaultWorkloadParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunUVM(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAccessMode compares UVM's three access behaviors.
func BenchmarkAblationAccessMode(b *testing.B) { benchExperiment(b, "abl-mode") }

// BenchmarkAblationFaultOrigin evaluates origin-informed stream
// prefetching against source-erased density prefetching.
func BenchmarkAblationFaultOrigin(b *testing.B) { benchExperiment(b, "abl-origin") }

// BenchmarkFullScaleValidation spot-checks absolute magnitudes on the
// unscaled 80-SM / 12 GB machine.
func BenchmarkFullScaleValidation(b *testing.B) { benchExperiment(b, "val-full") }

// BenchmarkSeedStability measures the multi-seed stability harness.
func BenchmarkSeedStability(b *testing.B) { benchExperiment(b, "val-seeds") }

// BenchmarkCalibrationAnchors re-measures the cost-model anchors.
func BenchmarkCalibrationAnchors(b *testing.B) { benchExperiment(b, "val-calib") }
