// Iterative application: launch the same stencil kernel repeatedly on
// one system, the way a real solver iterates. In-core, only the first
// iteration faults (UVM's residency is the win over re-copying);
// oversubscribed, every iteration pays the eviction tax again — there is
// no steady state to amortize into. Finally the host consumes the result.
package main

import (
	"fmt"
	"log"

	"uvmsim"
)

func run(label string, gpuMem, data int64, iters int) {
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := uvmsim.BuildWorkload(sys, "tealeaf", data, uvmsim.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d MiB data on %d MiB GPU\n", label, data>>20, gpuMem>>20)
	fmt.Printf("  %-6s %-10s %-9s %-11s %s\n", "iter", "time", "faults", "evictions", "h2d_mb")
	for i := 1; i <= iters; i++ {
		res, err := sys.RunUVM(kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6d %-10v %-9d %-11d %.1f\n",
			i, res.TotalTime, res.Faults, res.Evictions, float64(res.BytesH2D)/(1<<20))
	}
	// The host reads the solution vector back.
	u := sys.Space().Ranges()[0]
	back, err := sys.HostRead(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  host readback of %q: %v\n\n", "u", back)
}

func main() {
	const gpuMem = 64 << 20
	run("in-core", gpuMem, 32<<20, 4)
	run("oversubscribed", gpuMem, 80<<20, 4)
}
