// Replay policies: compare the four fault-replay policies (§III-E) on
// the same workload. Block replays earliest and most often; Batch-Flush
// (the driver default) pays flush cost to suppress duplicate faults;
// Once replays only when the buffer drains.
package main

import (
	"fmt"
	"log"

	"uvmsim"
)

func main() {
	const gpuMem = 96 << 20
	const data = 24 << 20

	fmt.Printf("%-11s %-10s %-9s %-9s %-11s %-12s %s\n",
		"policy", "time", "replays", "faults", "dup_faults", "stall", "flush_discarded")
	for _, policy := range []uvmsim.ReplayPolicy{
		uvmsim.ReplayBlock, uvmsim.ReplayBatch, uvmsim.ReplayBatchFlush, uvmsim.ReplayOnce,
	} {
		cfg := uvmsim.DefaultConfig(gpuMem)
		cfg.PrefetchPolicy = "none" // isolate the replay policy effect
		cfg.Driver.Policy = policy
		sys, err := uvmsim.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		kernel, err := uvmsim.BuildWorkload(sys, "regular", data, uvmsim.DefaultWorkloadParams())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunUVM(kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %-10v %-9d %-9d %-11d %-12v %d\n",
			policy, res.TotalTime, res.GPU.Replays, res.Faults,
			res.Counters.Get("faults_deduped"), res.GPU.StallTime,
			res.Counters.Get("flush_discarded"))
	}
}
