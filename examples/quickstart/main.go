// Quickstart: run one page-touch kernel under demand-paged UVM and under
// the explicit-transfer baseline, and print where the UVM time went —
// the repository's 60-second tour of the paper's Fig. 1 and Fig. 3.
package main

import (
	"fmt"
	"log"

	"uvmsim"
)

func main() {
	const gpuMem = 96 << 20 // a 1/128-scale Titan V framebuffer
	const data = 32 << 20   // one third of GPU memory: comfortably in-core

	// UVM run: data starts on the host and migrates on demand.
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := uvmsim.BuildWorkload(sys, "regular", data, uvmsim.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	uvm, err := sys.RunUVM(kernel)
	if err != nil {
		log.Fatal(err)
	}

	// Explicit baseline on a fresh system: one bulk copy, then compute.
	sys2, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
	if err != nil {
		log.Fatal(err)
	}
	kernel2, err := uvmsim.BuildWorkload(sys2, "regular", data, uvmsim.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	explicit, err := sys2.RunExplicit(kernel2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("data: %d MiB on a %d MiB GPU\n\n", data>>20, gpuMem>>20)
	fmt.Printf("explicit transfer + kernel: %v\n", explicit.TotalTime)
	fmt.Printf("UVM demand paging:          %v   (%.1fx slower)\n\n",
		uvm.TotalTime, float64(uvm.TotalTime)/float64(explicit.TotalTime))

	fmt.Printf("UVM fault entries fetched:  %d\n", uvm.Faults)
	fmt.Printf("GPU warp stall time:        %v\n", uvm.GPU.StallTime)
	fmt.Printf("replays issued:             %d\n", uvm.GPU.Replays)
	fmt.Printf("bytes H2D:                  %.1f MiB\n\n", float64(uvm.BytesH2D)/(1<<20))

	fmt.Println("driver time by phase (the paper's Fig. 3/4 categories):")
	fmt.Printf("  %s\n", uvm.Breakdown.String())
	fmt.Printf("  service subtotal: %v of %v total\n",
		uvm.Breakdown.Service(), uvm.Breakdown.Total())

	// A second launch of the same kernel finds everything resident.
	warm, err := sys.RunUVM(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwarm re-run (data already resident): %v, %d faults\n",
		warm.TotalTime, warm.Faults)
}
