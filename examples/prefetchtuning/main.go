// Prefetch tuning: sweep the density threshold on the STREAM triad
// workload, in-core. The paper (§IV-C) observes that an aggressive 1%
// threshold approaches explicit-transfer performance for undersubscribed
// workloads — large, early migrations amortize every per-fault cost.
package main

import (
	"fmt"
	"log"

	"uvmsim"
)

func main() {
	const gpuMem = 96 << 20
	const data = 48 << 20 // half of GPU memory: no eviction pressure

	// Explicit transfer reference.
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := uvmsim.BuildWorkload(sys, "stream", data, uvmsim.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	explicit, err := sys.RunExplicit(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit baseline: %v\n\n", explicit.TotalTime)
	fmt.Printf("%-12s %-10s %-9s %-12s %s\n",
		"prefetcher", "time", "vs expl", "faults", "prefetched_pages")

	run := func(policy string) {
		cfg := uvmsim.DefaultConfig(gpuMem)
		cfg.PrefetchPolicy = policy
		sys, err := uvmsim.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		kernel, err := uvmsim.BuildWorkload(sys, "stream", data, uvmsim.DefaultWorkloadParams())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunUVM(kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10v %-9s %-12d %d\n",
			policy, res.TotalTime,
			fmt.Sprintf("%.1fx", float64(res.TotalTime)/float64(explicit.TotalTime)),
			res.Faults, res.Counters.Get("prefetched_pages"))
	}

	run("none")
	for _, th := range []int{99, 75, 51, 25, 1} {
		run(fmt.Sprintf("density:%d", th))
	}
}
