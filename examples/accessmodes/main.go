// Access modes: UVM supports three page access behaviors (paper §III-A).
// This example runs the same sparse, oversubscribed gather under paged
// migration, remote mapping, and read-only duplication, then simulates
// the CPU consuming the results (the fault path in reverse).
package main

import (
	"fmt"
	"log"

	"uvmsim"
)

const (
	gpuMem = 48 << 20
	data   = 60 << 20 // 125%: migration must evict
)

func main() {
	fmt.Printf("random single-touch gather, %d MiB data on a %d MiB GPU\n\n", data>>20, gpuMem>>20)
	fmt.Printf("%-12s %-10s %-9s %-11s %-16s %-9s %s\n",
		"mode", "time", "faults", "evictions", "remote_accesses", "h2d_mb", "d2h_mb")

	for _, mode := range []uvmsim.AccessMode{uvmsim.ModeMigrate, uvmsim.ModeRemoteMap, uvmsim.ModeReadDup} {
		sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
		if err != nil {
			log.Fatal(err)
		}
		kernel, err := uvmsim.BuildWorkloadMode(sys, "random", data, mode, uvmsim.DefaultWorkloadParams())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunUVM(kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10v %-9d %-11d %-16d %-9.1f %.1f\n",
			mode, res.TotalTime, res.Faults, res.Evictions, res.GPU.RemoteAccesses,
			float64(res.BytesH2D)/(1<<20), float64(res.BytesD2H)/(1<<20))
	}

	// The reverse path: after a migrating kernel, the host consumes the
	// results, pulling resident pages back (UVM's CPU-fault path).
	sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := uvmsim.BuildWorkload(sys, "regular", 16<<20, uvmsim.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunUVM(kernel); err != nil {
		log.Fatal(err)
	}
	r := sys.Space().Ranges()[0]
	back, err := sys.HostRead(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhost consumption of a %d MiB migrated result: %v "+
		"(pages migrate home, GPU blocks released)\n", 16, back)
}
