// Oversubscription walkthrough: sweep an SGEMM working set across the
// GPU memory limit and watch the compute-rate cliff the paper's Fig. 10
// and Table II describe — faults stay manageable until ~120% of GPU
// memory, then evictions per fault explode and throughput collapses.
package main

import (
	"fmt"
	"log"
	"math"

	"uvmsim"
)

func main() {
	const gpuMem = 64 << 20

	fmt.Printf("%-6s %-10s %-10s %-10s %-10s %-12s %s\n",
		"n", "footprint", "time", "gflops", "faults", "evictions", "evict/fault")
	for _, frac := range []float64{0.6, 0.8, 0.95, 1.1, 1.25, 1.4, 1.7, 2.0, 2.4} {
		n := int(math.Sqrt(frac * float64(gpuMem) / 12.0))
		sys, err := uvmsim.NewSystem(uvmsim.DefaultConfig(gpuMem))
		if err != nil {
			log.Fatal(err)
		}
		kernel, err := uvmsim.BuildSGEMM(sys, n, uvmsim.DefaultWorkloadParams())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunUVM(kernel)
		if err != nil {
			log.Fatal(err)
		}
		gflops := 2 * math.Pow(float64(n), 3) / res.TotalTime.Seconds() / 1e9
		perFault := 0.0
		if res.Faults > 0 {
			perFault = float64(res.Counters.Get("evicted_pages")) / float64(res.Faults)
		}
		fmt.Printf("%-6d %-10s %-10v %-10.1f %-10d %-12d %.3f\n",
			n, fmt.Sprintf("%.0f%%", frac*100), res.TotalTime, gflops,
			res.Faults, res.Evictions, perFault)
	}

	fmt.Println("\nNote the cliff once the three matrices exceed GPU memory:")
	fmt.Println("fault-only LRU evicts the still-needed panels (evict-before-use),")
	fmt.Println("so pages bounce between host and device instead of being reused.")
}
